//! The `fsmeta` workload: file-metadata churn across many small
//! directories.
//!
//! The paper's benchmark only *reads* directories. Real file servers also
//! create, rename and unlink entries, and those operations are exactly
//! what exercises the deletion paths of the volume's flat name index
//! (backward-shift removal on unlink and rename). This workload drives
//! that churn end-to-end through the engine: each thread repeatedly picks
//! a directory and performs a create / unlink / rename / lookup — or,
//! with a small probability, retires the *whole directory* and recreates
//! it empty (exercising [`o2_fs::Volume::remove_directory`] and `DirId`
//! reuse) — with the host-side bookkeeping going through
//! [`o2_fs::Volume`]'s flat index and the *modeled* cost staying the
//! paper's Figure-3 shape — take the directory lock, scan entries up to
//! the touched slot, write the 32-byte entry (for mutations), unlock,
//! all inside `ct_start`/`ct_end`.
//!
//! The volume is shared by every thread (`Rc<RefCell<…>>`): the engine is
//! single-threaded in host terms and executes threads in deterministic
//! virtual-time order, so the churn — and therefore the whole run — is a
//! pure function of the spec.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_fs::{
    lookup_actions, synthetic_name, DirId, LookupCost, Volume, VolumeGeometry, DIRENT_SIZE,
};
use o2_runtime::{
    Action, BehaviourCtx, Engine, LockId, ObjectDescriptor, OpBehaviour, OpBuilder, OpGenerator,
    RuntimeConfig, SchedPolicy,
};
use o2_sim::{Machine, MachineConfig};

use crate::behaviour::DirectorySet;
use crate::experiment::Measurement;

/// A complete description of one metadata-churn run.
#[derive(Debug, Clone)]
pub struct FsMetaSpec {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Runtime (migration/locking/epoch) parameters.
    pub runtime: RuntimeConfig,
    /// Number of directories (many and small, unlike the lookup
    /// benchmark's few and large).
    pub n_dirs: u32,
    /// Entry slots per directory.
    pub capacity_per_dir: u32,
    /// Entries alive in each directory at the start.
    pub initial_live_per_dir: u32,
    /// Threads spawned per core.
    pub threads_per_core: u32,
    /// Cost model of the scan inner loop (shared with lookups).
    pub lookup_cost: LookupCost,
    /// RNG seed; every thread derives its own stream from it.
    pub seed: u64,
    /// Operations to run before measuring.
    pub warmup_ops: u64,
    /// Length of the measurement window, in cycles.
    pub measure_cycles: u64,
}

impl FsMetaSpec {
    /// A default churn setup: many 64-slot directories, half full, one
    /// thread per core on the paper's 16-core machine.
    pub fn paper_default(n_dirs: u32) -> Self {
        Self {
            machine: MachineConfig::amd16(),
            runtime: RuntimeConfig::default(),
            n_dirs: n_dirs.max(1),
            capacity_per_dir: 64,
            initial_live_per_dir: 32,
            threads_per_core: 1,
            lookup_cost: LookupCost::default(),
            seed: 42,
            warmup_ops: (6 * n_dirs as u64).max(2_000),
            measure_cycles: 3_000_000,
        }
    }

    /// Total number of workload threads.
    pub fn total_threads(&self) -> u32 {
        self.machine.total_cores() * self.threads_per_core
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        self.runtime.validate()?;
        if self.n_dirs == 0 || self.capacity_per_dir == 0 {
            return Err("need at least one directory with at least one slot".into());
        }
        if self.initial_live_per_dir > self.capacity_per_dir {
            return Err("initial_live_per_dir exceeds capacity_per_dir".into());
        }
        if self.threads_per_core == 0 {
            return Err("need at least one thread per core".into());
        }
        if self.measure_cycles == 0 {
            return Err("measure_cycles must be positive".into());
        }
        Ok(())
    }
}

/// Counters of what the churn actually did (host-side ground truth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsMetaStats {
    /// Entries created.
    pub created: u64,
    /// Entries unlinked (one at a time).
    pub unlinked: u64,
    /// Entries renamed.
    pub renamed: u64,
    /// Pure lookups (including deliberate misses).
    pub lookups: u64,
    /// Whole directories retired and recreated in place.
    pub dirs_recycled: u64,
    /// Entries drained while retiring directories.
    pub drained: u64,
}

/// Shared mutable state of one churn run: the volume plus the live-name
/// tracking the generators need to pick unlink/rename victims.
struct FsState {
    volume: Volume,
    /// Serial numbers of the live synthetic names, per directory.
    live: Vec<Vec<u32>>,
    /// Next unused serial per directory (names are never reused, so every
    /// create/rename target is fresh by construction).
    next_serial: Vec<u32>,
    stats: FsMetaStats,
}

impl FsState {
    /// Hands out the next fresh serial for `dir`. `synthetic_name`
    /// formats serials as `F{serial:07}.DAT`, so at 10^7 the 8.3
    /// truncation would alias earlier names and silently break the
    /// fresh-by-construction invariant — fail loudly instead (no
    /// realistic measurement window gets anywhere near it).
    fn fresh_serial(&mut self, dir: u32) -> u32 {
        let serial = self.next_serial[dir as usize];
        assert!(
            serial < 10_000_000,
            "fsmeta serial space exhausted in directory {dir}"
        );
        self.next_serial[dir as usize] = serial + 1;
        serial
    }
}

/// The per-thread metadata-churn generator.
pub struct FsMetaGen {
    state: Rc<RefCell<FsState>>,
    dirs: Rc<DirectorySet>,
    cost: LookupCost,
    /// Entry slots per directory, needed to recreate retired directories.
    capacity: u32,
    rng: StdRng,
    ops_generated: u64,
    max_ops: Option<u64>,
}

impl FsMetaGen {
    fn new(
        state: Rc<RefCell<FsState>>,
        dirs: Rc<DirectorySet>,
        cost: LookupCost,
        capacity: u32,
        seed: u64,
        max_ops: Option<u64>,
    ) -> Self {
        Self {
            state,
            dirs,
            cost,
            capacity,
            rng: StdRng::seed_from_u64(seed),
            ops_generated: 0,
            max_ops,
        }
    }

    /// The modeled action sequence of a mutating metadata op: scan to the
    /// touched slot under the directory lock, then write the 32-byte
    /// entry. Same cost model as a lookup plus the entry write.
    fn mutation_actions(&self, dir: DirId, lock: LockId, slot: u32) -> Vec<Action> {
        let handle = &self.dirs.dirs[dir as usize];
        let examined = u64::from(slot.min(handle.entry_count.saturating_sub(1)) + 1);
        OpBuilder::annotated(handle.object_id())
            .compute(self.cost.fixed_overhead_cycles)
            .lock(lock)
            .read(handle.sim_addr, examined * DIRENT_SIZE as u64)
            .compute(examined * self.cost.compare_cycles_per_entry)
            .write(handle.entry_addr(slot), DIRENT_SIZE as u64)
            .unlock(lock)
            .finish()
    }
}

impl OpGenerator for FsMetaGen {
    fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
        if let Some(max) = self.max_ops {
            if self.ops_generated >= max {
                return Vec::new();
            }
        }
        if self.dirs.is_empty() {
            return Vec::new();
        }
        let dir = self.rng.gen_range(0..self.dirs.len() as u32);
        let lock = self.dirs.locks[dir as usize];
        let roll = self.rng.gen_range(0..100u32);
        self.ops_generated += 1;

        let mut st = self.state.borrow_mut();
        let st = &mut *st;
        let live_n = st.live[dir as usize].len();
        let free_n = st.volume.free_slots(dir).expect("valid directory") as usize;

        // Keep the mix away from the walls: an empty directory can only
        // create, a full one can only unlink; otherwise 40% create,
        // 30% unlink, 14% rename, 14% lookup, 2% whole-directory
        // retirement.
        let choice = if live_n == 0 {
            0
        } else if free_n == 0 {
            40
        } else {
            roll
        };
        match choice {
            0..=39 => {
                let serial = st.fresh_serial(dir);
                let name = synthetic_name(serial);
                let slot = st
                    .volume
                    .create_entry(dir, &name, 64)
                    .expect("fsmeta create on a directory with free slots");
                st.live[dir as usize].push(serial);
                st.stats.created += 1;
                self.mutation_actions(dir, lock, slot)
            }
            40..=69 => {
                let pick = self.rng.gen_range(0..live_n);
                let serial = st.live[dir as usize].swap_remove(pick);
                let name = synthetic_name(serial);
                let slot = st
                    .volume
                    .unlink(dir, &name)
                    .expect("fsmeta unlink of a live entry");
                st.stats.unlinked += 1;
                self.mutation_actions(dir, lock, slot)
            }
            70..=83 => {
                let pick = self.rng.gen_range(0..live_n);
                let old_serial = st.live[dir as usize][pick];
                let new_serial = st.fresh_serial(dir);
                let slot = st
                    .volume
                    .rename(
                        dir,
                        &synthetic_name(old_serial),
                        &synthetic_name(new_serial),
                    )
                    .expect("fsmeta rename of a live entry to a fresh name");
                st.live[dir as usize][pick] = new_serial;
                st.stats.renamed += 1;
                self.mutation_actions(dir, lock, slot)
            }
            84..=97 => {
                st.stats.lookups += 1;
                let handle = &self.dirs.dirs[dir as usize];
                if roll == 97 {
                    // A deliberate miss: scans the whole directory.
                    let target = st.next_serial[dir as usize];
                    debug_assert_eq!(
                        st.volume.search(dir, &synthetic_name(target)).expect("dir"),
                        None
                    );
                    return lookup_actions(handle, lock, u32::MAX, &self.cost);
                }
                let pick = self.rng.gen_range(0..live_n);
                let serial = st.live[dir as usize][pick];
                let (slot, _) = st
                    .volume
                    .search(dir, &synthetic_name(serial))
                    .expect("valid directory")
                    .expect("live entry resolves");
                lookup_actions(handle, lock, slot, &self.cost)
            }
            _ => {
                // Retire the whole directory: drain the remaining live
                // entries, remove it (reclaiming the DirId and its FAT
                // clusters) and recreate it empty in the same id slot.
                // The simulated region and lock of the directory are
                // fixed at build time in `self.dirs`, so only the
                // host-side bookkeeping is torn down and rebuilt.
                let drained: Vec<u32> = st.live[dir as usize].drain(..).collect();
                let mut slots = Vec::with_capacity(drained.len());
                for serial in &drained {
                    let slot = st
                        .volume
                        .unlink(dir, &synthetic_name(*serial))
                        .expect("fsmeta drain of a live entry");
                    slots.push(slot);
                }
                st.volume
                    .remove_directory(dir)
                    .expect("drained directory is empty");
                let recreated = st
                    .volume
                    .create_directory_with_capacity(0, self.capacity)
                    .expect("recreate retired directory");
                assert_eq!(recreated, dir, "the freed DirId slot is reused immediately");
                st.stats.drained += drained.len() as u64;
                st.stats.dirs_recycled += 1;
                // Modeled cost: scan the whole directory under its lock,
                // write each drained entry's deleted marker, then the
                // directory metadata itself.
                let handle = &self.dirs.dirs[dir as usize];
                let mut op = OpBuilder::annotated(handle.object_id())
                    .compute(self.cost.fixed_overhead_cycles)
                    .lock(lock)
                    .read(
                        handle.sim_addr,
                        u64::from(handle.entry_count) * DIRENT_SIZE as u64,
                    )
                    .compute(u64::from(handle.entry_count) * self.cost.compare_cycles_per_entry);
                for &slot in &slots {
                    op = op.write(handle.entry_addr(slot), DIRENT_SIZE as u64);
                }
                op.write(handle.sim_addr, DIRENT_SIZE as u64)
                    .unlock(lock)
                    .finish()
            }
        }
    }
}

/// A fully constructed metadata-churn run.
pub struct FsMetaExperiment {
    spec: FsMetaSpec,
    engine: Engine,
    state: Rc<RefCell<FsState>>,
    dirs: Rc<DirectorySet>,
}

impl FsMetaExperiment {
    /// Builds the experiment: volume of `n_dirs` small directories mapped
    /// into simulated memory, engine under `policy`, one churn thread per
    /// core (times `threads_per_core`).
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid or the volume cannot be
    /// built.
    pub fn build(spec: FsMetaSpec, policy: Box<dyn SchedPolicy>) -> Self {
        spec.validate().expect("invalid fsmeta specification");
        let mut machine = Machine::new(spec.machine.clone());

        let mut geometry = VolumeGeometry::default();
        let bytes_per_dir = (spec.capacity_per_dir as usize * DIRENT_SIZE)
            .div_ceil(geometry.bytes_per_cluster as usize)
            * geometry.bytes_per_cluster as usize;
        let needed =
            (spec.n_dirs as usize * bytes_per_dir) / geometry.bytes_per_cluster as usize + 8;
        geometry.data_clusters = geometry.data_clusters.max(needed as u32);
        let mut volume = Volume::new(geometry);
        for _ in 0..spec.n_dirs {
            volume
                .create_directory_with_capacity(spec.initial_live_per_dir, spec.capacity_per_dir)
                .expect("fsmeta volume construction failed");
        }
        volume.map_into(machine.memory_mut());

        let mut engine = Engine::new(machine, policy, spec.runtime);
        let mut locks = Vec::with_capacity(volume.dir_count());
        for dir in volume.directories() {
            let lock = engine.register_lock(dir.lock_addr);
            // Metadata churn writes the directories, so unlike the lookup
            // benchmark they are not read-mostly.
            engine.register_object(
                ObjectDescriptor::new(dir.object_id(), dir.sim_addr, dir.byte_len as u64)
                    .with_lock(lock),
            );
            locks.push(lock);
        }
        let dirs = Rc::new(DirectorySet {
            dirs: volume.directories().cloned().collect(),
            locks,
        });
        let state = Rc::new(RefCell::new(FsState {
            live: (0..spec.n_dirs)
                .map(|_| (0..spec.initial_live_per_dir).collect())
                .collect(),
            next_serial: vec![spec.initial_live_per_dir; spec.n_dirs as usize],
            stats: FsMetaStats::default(),
            volume,
        }));

        for t in 0..spec.total_threads() {
            let core = t % spec.machine.total_cores();
            let gen = FsMetaGen::new(
                Rc::clone(&state),
                Rc::clone(&dirs),
                spec.lookup_cost,
                spec.capacity_per_dir,
                spec.seed.wrapping_add(u64::from(t) * 0x9E37_79B9),
                None,
            );
            engine.spawn(core, Box::new(OpBehaviour::new(gen)));
        }

        Self {
            spec,
            engine,
            state,
            dirs,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The specification this experiment was built from.
    pub fn spec(&self) -> &FsMetaSpec {
        &self.spec
    }

    /// The directory set shared by the workload threads.
    pub fn directories(&self) -> &DirectorySet {
        &self.dirs
    }

    /// What the churn has done so far (host-side ground truth).
    pub fn meta_stats(&self) -> FsMetaStats {
        self.state.borrow().stats
    }

    /// Runs `f` against the shared volume (e.g. to fingerprint its final
    /// state in tests).
    pub fn with_volume<R>(&self, f: impl FnOnce(&Volume) -> R) -> R {
        f(&self.state.borrow().volume)
    }

    /// Live entries per directory, in dense-id order.
    pub fn live_counts(&self) -> Vec<u32> {
        let st = self.state.borrow();
        st.live.iter().map(|l| l.len() as u32).collect()
    }

    /// Runs the warm-up phase followed by the measurement window and
    /// returns the measurement (same shape as the lookup benchmark's).
    pub fn run(&mut self) -> Measurement {
        self.engine.run_until_ops(self.spec.warmup_ops);
        let window = self.engine.run_window(self.spec.measure_cycles);
        let machine = self.engine.machine();
        let dram_loads = (0..self.spec.machine.total_cores())
            .map(|c| machine.counters(c).dram_loads)
            .collect();
        let migrations = (0..self.spec.machine.total_cores())
            .map(|c| machine.counters(c).migrations_in)
            .sum();
        Measurement {
            policy: self.engine.policy().name().to_string(),
            total_bytes: self.state.borrow().volume.total_directory_bytes(),
            window,
            lock_contention: self.engine.locks().total_contention(),
            interconnect: machine.interconnect_stats(),
            dram_loads,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::NullPolicy;
    use o2_sim::ContentionModel;

    fn small_spec() -> FsMetaSpec {
        let mut spec = FsMetaSpec::paper_default(12);
        spec.machine = o2_sim::MachineConfig::quad4();
        spec.machine.contention = ContentionModel::None;
        spec.capacity_per_dir = 16;
        spec.initial_live_per_dir = 8;
        spec.warmup_ops = 200;
        spec.measure_cycles = 500_000;
        spec
    }

    #[test]
    fn churn_exercises_every_op_kind_and_stays_consistent() {
        let mut exp = FsMetaExperiment::build(small_spec(), Box::new(NullPolicy));
        let m = exp.run();
        assert!(m.window.ops > 0);
        let stats = exp.meta_stats();
        assert!(stats.created > 0, "no creates: {stats:?}");
        assert!(stats.unlinked > 0, "no unlinks: {stats:?}");
        assert!(stats.renamed > 0, "no renames: {stats:?}");
        assert!(stats.lookups > 0, "no lookups: {stats:?}");
        assert!(
            stats.dirs_recycled > 0,
            "no directories recycled: {stats:?}"
        );
        assert!(stats.drained > 0, "no entries drained: {stats:?}");
        // The host-side live tracking and the volume's flat index agree.
        let live = exp.live_counts();
        exp.with_volume(|v| {
            for (dir, &n) in live.iter().enumerate() {
                assert_eq!(v.live_entries(dir as u32).unwrap(), n, "dir {dir}");
                assert_eq!(
                    v.free_slots(dir as u32).unwrap(),
                    16 - n,
                    "dir {dir} slots not conserved"
                );
            }
        });
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut exp = FsMetaExperiment::build(small_spec(), Box::new(NullPolicy));
            let m = exp.run();
            (
                m.window.ops,
                m.window.end,
                exp.meta_stats(),
                exp.live_counts(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_churn_differently() {
        let run = |seed| {
            let mut spec = small_spec();
            spec.seed = seed;
            let mut exp = FsMetaExperiment::build(spec, Box::new(NullPolicy));
            exp.run();
            exp.meta_stats()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut s = small_spec();
        s.initial_live_per_dir = s.capacity_per_dir + 1;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.n_dirs = 0;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.measure_cycles = 0;
        assert!(s.validate().is_err());
    }
}
