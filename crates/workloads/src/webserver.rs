//! A web-server-like workload: multi-component path resolution.
//!
//! The paper motivates the directory-lookup benchmark with web servers,
//! citing Veal and Foong's study of multicore web-server scalability:
//! serving a request means resolving a path like `/a/b/index.html`, i.e.
//! several directory lookups in sequence. This generator models that:
//! each "request" resolves a path of several components, walking from a
//! small set of hot top-level directories into a large set of leaf
//! directories. Consecutive lookups within one request touch different
//! objects, which is exactly the access pattern that benefits from the
//! object-clustering extension (Section 6.2).

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_fs::{lookup_actions, LookupCost};
use o2_runtime::{Action, BehaviourCtx, OpGenerator};

use crate::behaviour::DirectorySet;

/// Per-thread generator of path-resolution "requests".
pub struct PathLookupGen {
    dirs: Rc<DirectorySet>,
    cost: LookupCost,
    /// Number of directories treated as top-level (hot) directories.
    top_level_dirs: u32,
    /// Components per path (lookups per request).
    components: u32,
    rng: StdRng,
    max_requests: Option<u64>,
    requests: u64,
    /// Remaining lookups of the request in progress: (dir index, entry).
    pending: Vec<(u32, u32)>,
}

impl PathLookupGen {
    /// Creates a generator resolving `components`-deep paths, with the
    /// first `top_level_dirs` directories acting as the hot root set.
    pub fn new(
        dirs: Rc<DirectorySet>,
        cost: LookupCost,
        top_level_dirs: u32,
        components: u32,
        seed: u64,
        max_requests: Option<u64>,
    ) -> Self {
        Self {
            top_level_dirs: top_level_dirs.max(1),
            components: components.max(1),
            dirs,
            cost,
            rng: StdRng::seed_from_u64(seed),
            max_requests,
            requests: 0,
            pending: Vec::new(),
        }
    }

    /// Requests fully generated so far.
    pub fn requests_generated(&self) -> u64 {
        self.requests
    }

    fn plan_request(&mut self) {
        let n = self.dirs.len() as u32;
        let top = self.top_level_dirs.min(n);
        self.pending.clear();
        for level in 0..self.components {
            let dir = if level == 0 {
                self.rng.gen_range(0..top)
            } else if top < n {
                self.rng.gen_range(top..n)
            } else {
                self.rng.gen_range(0..n)
            };
            let entries = self.dirs.dirs[dir as usize].entry_count;
            let entry = self.rng.gen_range(0..entries);
            self.pending.push((dir, entry));
        }
        // The walk resolves components root-first.
        self.pending.reverse();
        self.requests += 1;
    }
}

impl OpGenerator for PathLookupGen {
    fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
        if self.dirs.is_empty() {
            return Vec::new();
        }
        if self.pending.is_empty() {
            if let Some(max) = self.max_requests {
                if self.requests >= max {
                    return Vec::new();
                }
            }
            self.plan_request();
        }
        let (dir_idx, entry) = self.pending.pop().expect("planned request");
        let dir = &self.dirs.dirs[dir_idx as usize];
        let lock = self.dirs.locks[dir_idx as usize];
        lookup_actions(dir, lock, entry, &self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_fs::Volume;
    use o2_sim::SimMemory;

    fn dirs(n: u32) -> Rc<DirectorySet> {
        let mut v = Volume::build_benchmark(n, 50).unwrap();
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        Rc::new(DirectorySet {
            dirs: v.directories().cloned().collect(),
            locks: (0..n as usize).collect(),
        })
    }

    fn ctx() -> BehaviourCtx {
        BehaviourCtx {
            thread: 0,
            core: 0,
            home_core: 0,
            now: 0,
            ops_completed: 0,
        }
    }

    #[test]
    fn each_request_produces_one_op_per_component() {
        let set = dirs(16);
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 4, 3, 1, Some(5));
        let mut ops = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            assert!(matches!(op.first(), Some(Action::CtStart(_))));
            ops += 1;
        }
        assert_eq!(ops, 15);
        assert_eq!(gen.requests_generated(), 5);
    }

    #[test]
    fn first_component_comes_from_the_hot_root_set() {
        let set = dirs(16);
        let root_ids: Vec<u64> = set.dirs[0..4].iter().map(|d| d.object_id()).collect();
        let leaf_ids: Vec<u64> = set.dirs[4..].iter().map(|d| d.object_id()).collect();
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 4, 2, 7, Some(20));
        let mut first = true;
        let mut roots_seen = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            if let Action::CtStart(obj) = op[0] {
                if first {
                    assert!(root_ids.contains(&obj), "first component must be a root");
                    roots_seen += 1;
                } else {
                    assert!(leaf_ids.contains(&obj), "later components must be leaves");
                }
            }
            first = !first;
        }
        assert_eq!(roots_seen, 20);
    }

    #[test]
    fn handles_fewer_directories_than_root_set() {
        let set = dirs(2);
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 8, 3, 3, Some(3));
        let mut count = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            count += 1;
        }
        assert_eq!(count, 9);
    }
}
