//! A web-server-like workload: multi-component path resolution.
//!
//! The paper motivates the directory-lookup benchmark with web servers,
//! citing Veal and Foong's study of multicore web-server scalability:
//! serving a request means resolving a path like `/a/b/index.html`, i.e.
//! several directory lookups in sequence. This generator models that:
//! each "request" resolves a path of several components, walking from a
//! small set of hot top-level directories into a large set of leaf
//! directories. Consecutive lookups within one request touch different
//! objects, which is exactly the access pattern that benefits from the
//! object-clustering extension (Section 6.2).

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_fs::{lookup_actions_kind, LookupCost};
use o2_runtime::{AccessKind, Action, BehaviourCtx, OpGenerator};

use crate::behaviour::DirectorySet;

/// Traffic mix for a web server serving static files and CGI requests.
///
/// Static requests are pure path resolutions: every component lookup is
/// read-kind, so a replica-serving policy may run them against any copy of
/// the hot root directories. A CGI request resolves the same way but its
/// final component is a write-kind lookup (the script updates state under
/// the leaf directory's lock) followed by the script's compute burst.
#[derive(Debug, Clone, Copy)]
pub struct WebMix {
    /// Fraction of requests that are CGI (`0.0..=1.0`).
    pub cgi_fraction: f64,
    /// Extra compute cycles charged for running the CGI script.
    pub cgi_compute_cycles: u64,
}

impl Default for WebMix {
    fn default() -> Self {
        Self {
            cgi_fraction: 0.05,
            cgi_compute_cycles: 4_000,
        }
    }
}

/// Per-thread generator of path-resolution "requests".
pub struct PathLookupGen {
    dirs: Rc<DirectorySet>,
    cost: LookupCost,
    /// Number of directories treated as top-level (hot) directories.
    top_level_dirs: u32,
    /// Components per path (lookups per request).
    components: u32,
    /// Static/CGI traffic mix; `None` reproduces the original write-kind
    /// stream without consuming any extra randomness.
    mix: Option<WebMix>,
    rng: StdRng,
    max_requests: Option<u64>,
    requests: u64,
    /// Remaining lookups of the request in progress:
    /// (dir index, entry, this lookup is a CGI request's final component).
    pending: Vec<(u32, u32, bool)>,
}

impl PathLookupGen {
    /// Creates a generator resolving `components`-deep paths, with the
    /// first `top_level_dirs` directories acting as the hot root set.
    pub fn new(
        dirs: Rc<DirectorySet>,
        cost: LookupCost,
        top_level_dirs: u32,
        components: u32,
        seed: u64,
        max_requests: Option<u64>,
    ) -> Self {
        Self {
            top_level_dirs: top_level_dirs.max(1),
            components: components.max(1),
            dirs,
            cost,
            mix: None,
            rng: StdRng::seed_from_u64(seed),
            max_requests,
            requests: 0,
            pending: Vec::new(),
        }
    }

    /// Like [`PathLookupGen::new`], but with a static/CGI traffic mix:
    /// static components are read-kind lookups, and a CGI request's final
    /// component is a write-kind lookup plus the script's compute burst.
    #[allow(clippy::too_many_arguments)]
    pub fn new_mixed(
        dirs: Rc<DirectorySet>,
        cost: LookupCost,
        top_level_dirs: u32,
        components: u32,
        mix: WebMix,
        seed: u64,
        max_requests: Option<u64>,
    ) -> Self {
        let mut gen = Self::new(dirs, cost, top_level_dirs, components, seed, max_requests);
        gen.mix = Some(mix);
        gen
    }

    /// Requests fully generated so far.
    pub fn requests_generated(&self) -> u64 {
        self.requests
    }

    fn plan_request(&mut self) {
        let n = self.dirs.len() as u32;
        let top = self.top_level_dirs.min(n);
        self.pending.clear();
        for level in 0..self.components {
            let dir = if level == 0 {
                self.rng.gen_range(0..top)
            } else if top < n {
                self.rng.gen_range(top..n)
            } else {
                self.rng.gen_range(0..n)
            };
            let entries = self.dirs.dirs[dir as usize].entry_count;
            let entry = self.rng.gen_range(0..entries);
            self.pending.push((dir, entry, false));
        }
        if let Some(mix) = self.mix {
            if self.rng.gen::<f64>() < mix.cgi_fraction {
                if let Some(last) = self.pending.last_mut() {
                    last.2 = true;
                }
            }
        }
        // The walk resolves components root-first.
        self.pending.reverse();
        self.requests += 1;
    }
}

impl OpGenerator for PathLookupGen {
    fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<Action> {
        if self.dirs.is_empty() {
            return Vec::new();
        }
        if self.pending.is_empty() {
            if let Some(max) = self.max_requests {
                if self.requests >= max {
                    return Vec::new();
                }
            }
            self.plan_request();
        }
        let (dir_idx, entry, cgi_final) = self.pending.pop().expect("planned request");
        let dir = &self.dirs.dirs[dir_idx as usize];
        let lock = self.dirs.locks[dir_idx as usize];
        match self.mix {
            None => lookup_actions_kind(dir, lock, entry, &self.cost, AccessKind::Write),
            Some(mix) if cgi_final => {
                // The script mutates state under the leaf directory, then
                // runs: a write-kind lookup with the compute burst folded
                // into the same annotated operation.
                let mut actions =
                    lookup_actions_kind(dir, lock, entry, &self.cost, AccessKind::Write);
                let end = actions.pop().expect("lookup ends with ct_end");
                actions.push(Action::Compute(mix.cgi_compute_cycles));
                actions.push(end);
                actions
            }
            Some(_) => lookup_actions_kind(dir, lock, entry, &self.cost, AccessKind::Read),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_fs::Volume;
    use o2_sim::SimMemory;

    fn dirs(n: u32) -> Rc<DirectorySet> {
        let mut v = Volume::build_benchmark(n, 50).unwrap();
        let mut mem = SimMemory::new(4, 64);
        v.map_into(&mut mem);
        Rc::new(DirectorySet {
            dirs: v.directories().cloned().collect(),
            locks: (0..n as usize).collect(),
        })
    }

    fn ctx() -> BehaviourCtx {
        BehaviourCtx {
            thread: 0,
            core: 0,
            home_core: 0,
            now: 0,
            ops_completed: 0,
        }
    }

    #[test]
    fn each_request_produces_one_op_per_component() {
        let set = dirs(16);
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 4, 3, 1, Some(5));
        let mut ops = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            assert!(matches!(op.first(), Some(Action::CtStart(..))));
            ops += 1;
        }
        assert_eq!(ops, 15);
        assert_eq!(gen.requests_generated(), 5);
    }

    #[test]
    fn first_component_comes_from_the_hot_root_set() {
        let set = dirs(16);
        let root_ids: Vec<u64> = set.dirs[0..4].iter().map(|d| d.object_id()).collect();
        let leaf_ids: Vec<u64> = set.dirs[4..].iter().map(|d| d.object_id()).collect();
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 4, 2, 7, Some(20));
        let mut first = true;
        let mut roots_seen = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            if let Action::CtStart(obj, _) = op[0] {
                if first {
                    assert!(root_ids.contains(&obj), "first component must be a root");
                    roots_seen += 1;
                } else {
                    assert!(leaf_ids.contains(&obj), "later components must be leaves");
                }
            }
            first = !first;
        }
        assert_eq!(roots_seen, 20);
    }

    #[test]
    fn mixed_traffic_marks_only_cgi_finals_as_writes() {
        let set = dirs(16);
        let mix = WebMix {
            cgi_fraction: 0.5,
            cgi_compute_cycles: 7_777,
        };
        let mut gen = PathLookupGen::new_mixed(set, LookupCost::default(), 4, 3, mix, 11, Some(40));
        let mut component = 0;
        let mut writes = 0;
        let mut reads = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            let Some(Action::CtStart(_, kind)) = op.first().copied() else {
                panic!("op must start with ct_start");
            };
            let is_final = component == 2;
            component = (component + 1) % 3;
            if kind == AccessKind::Write {
                assert!(is_final, "only a request's final component may write");
                writes += 1;
                // The CGI burst rides inside the same annotated op.
                assert!(op.contains(&Action::Compute(7_777)));
            } else {
                reads += 1;
                assert!(!op.contains(&Action::Compute(7_777)));
            }
        }
        assert!(writes > 0, "a 0.5 cgi fraction must produce some CGI");
        assert!(reads > 0);
        // 40 requests * 3 components; writes only on finals.
        assert_eq!(writes + reads, 120);
        assert!(writes <= 40);
    }

    #[test]
    fn legacy_constructor_is_all_writes_and_stream_stable() {
        let set = dirs(8);
        let mut gen = PathLookupGen::new(set.clone(), LookupCost::default(), 2, 2, 5, Some(10));
        let mut legacy = Vec::new();
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            let Some(Action::CtStart(obj, kind)) = op.first().copied() else {
                panic!("op must start with ct_start");
            };
            assert_eq!(kind, AccessKind::Write);
            legacy.push(obj);
        }
        // A cgi_fraction of 0 draws the same dirs/entries; only the one
        // extra mix draw per request differs, which must not perturb the
        // component sequence within each request's plan.
        let mix = WebMix {
            cgi_fraction: 0.0,
            cgi_compute_cycles: 1,
        };
        let mut mixed =
            PathLookupGen::new_mixed(set, LookupCost::default(), 2, 2, mix, 5, Some(10));
        let mut objs = Vec::new();
        loop {
            let op = mixed.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            if let Some(Action::CtStart(obj, _)) = op.first().copied() {
                objs.push(obj);
            }
        }
        // First request is planned from the same rng prefix.
        assert_eq!(objs[..2], legacy[..2]);
    }

    #[test]
    fn handles_fewer_directories_than_root_set() {
        let set = dirs(2);
        let mut gen = PathLookupGen::new(set, LookupCost::default(), 8, 3, 3, Some(3));
        let mut count = 0;
        loop {
            let op = gen.next_op(&ctx());
            if op.is_empty() {
                break;
            }
            count += 1;
        }
        assert_eq!(count, 9);
    }
}
