//! # o2-workloads — benchmark workloads and experiment assembly
//!
//! Reproduces the synthetic workloads of the paper's evaluation
//! (Section 5) and the motivating web-server workload (Section 2):
//!
//! * [`spec`] — declarative workload specifications (machine, directory
//!   count, popularity distribution, cost model, seeds);
//! * [`distribution`] — uniform, oscillating (Figure 4b), Zipf and hotspot
//!   directory-popularity distributions;
//! * [`behaviour`] — the directory-lookup thread of Figures 1/3: pick a
//!   random directory and file, search it under the directory spin lock,
//!   inside `ct_start`/`ct_end`;
//! * [`webserver`] — multi-component path resolution, the workload the
//!   paper's introduction motivates;
//! * [`fsmeta`] — file-metadata churn (create / rename / unlink across
//!   many small directories), exercising the volume's flat name index
//!   and its deletion paths end-to-end;
//! * [`open_loop`] — a Poisson arrival process that wraps any generator,
//!   so latency includes queueing delay instead of just service time;
//! * [`scale`] — the million-object tier: computed object layout, O(1)
//!   Zipf sampling, pre-sized engine state and sketch-based latency;
//! * [`experiment`] — builds machine + volume + engine + threads for a
//!   spec and a policy, runs warm-up and a measurement window, and reports
//!   throughput in the paper's units (thousands of resolutions per second).
//!
//! ```
//! use o2_workloads::{Experiment, WorkloadSpec};
//! use o2_runtime::NullPolicy;
//!
//! let mut spec = WorkloadSpec::paper_default(4);
//! spec.machine = o2_sim::MachineConfig::quad4();
//! spec.warmup_ops = 50;
//! spec.measure_cycles = 200_000;
//! let mut exp = Experiment::build(spec, Box::new(NullPolicy));
//! let m = exp.run();
//! assert!(m.kres_per_sec() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behaviour;
pub mod distribution;
pub mod experiment;
pub mod fsmeta;
pub mod open_loop;
pub mod scale;
pub mod spec;
pub mod webserver;

pub use behaviour::{DirectoryLookupGen, DirectorySet};
pub use distribution::DirChooser;
pub use experiment::{run_once, Experiment, Measurement};
pub use fsmeta::{FsMetaExperiment, FsMetaGen, FsMetaSpec, FsMetaStats};
pub use open_loop::OpenLoopGen;
pub use scale::{run_scale, ScaleExperiment, ScaleGen, ScaleMeasurement, ScaleSpec, ZipfSampler};
pub use spec::{Popularity, WorkloadSpec};
pub use webserver::{PathLookupGen, WebMix};
