//! Experiment assembly and measurement.
//!
//! Builds the whole stack for one benchmark run — simulated machine, FAT
//! volume mapped into simulated memory, runtime engine under a chosen
//! scheduling policy, one lookup thread per core — runs a warm-up phase and
//! a measurement window, and reports throughput in the units of Figure 4
//! (thousands of resolutions per second).

use std::rc::Rc;

use o2_fs::{directory_descriptor, Volume};
use o2_runtime::{Engine, OpBehaviour, OpGenerator, RunWindow, SchedPolicy};
use o2_sim::{InterconnectStats, Machine, Region};

use crate::behaviour::{DirectoryLookupGen, DirectorySet};
use crate::distribution::DirChooser;
use crate::spec::WorkloadSpec;

/// A fully constructed benchmark run.
pub struct Experiment {
    spec: WorkloadSpec,
    engine: Engine,
    volume: Volume,
    dirs: Rc<DirectorySet>,
}

/// The measurement produced by [`Experiment::run`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Name of the scheduling policy that produced the measurement.
    pub policy: String,
    /// Total directory data in bytes (the x-axis of Figure 4).
    pub total_bytes: u64,
    /// The measurement window.
    pub window: RunWindow,
    /// Spin-lock acquisitions that found the lock held.
    pub lock_contention: u64,
    /// Interconnect statistics accumulated over the whole run.
    pub interconnect: InterconnectStats,
    /// DRAM loads during the whole run, per core.
    pub dram_loads: Vec<u64>,
    /// Operation migrations performed by the runtime over the whole run.
    pub migrations: u64,
}

impl Measurement {
    /// Throughput in thousands of resolutions per second (the y-axis of
    /// Figure 4).
    pub fn kres_per_sec(&self) -> f64 {
        self.window.kops_per_second()
    }

    /// Total data size in kilobytes (the x-axis of Figure 4).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes as f64 / 1024.0
    }
}

impl Experiment {
    /// Builds an experiment from a specification and a scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid or the volume cannot be
    /// built (e.g. an absurd directory count).
    pub fn build(spec: WorkloadSpec, policy: Box<dyn SchedPolicy>) -> Self {
        Self::build_with(spec, policy, |spec, dirs, t| {
            let chooser = DirChooser::new(spec.n_dirs, spec.popularity);
            Box::new(DirectoryLookupGen::new(
                Rc::clone(dirs),
                chooser,
                spec.lookup_cost,
                spec.write_fraction,
                spec.seed.wrapping_add(u64::from(t) * 0x9E37_79B9),
                None,
            ))
        })
    }

    /// Builds an experiment with a caller-supplied per-thread generator.
    ///
    /// The factory receives the spec, the shared directory set and the
    /// thread index, and returns that thread's operation generator. This is
    /// how alternative workloads (e.g. the web-server path-resolution mix)
    /// reuse the standard volume construction, object registration and
    /// fault-plan plumbing.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid or the volume cannot be
    /// built.
    pub fn build_with<F>(spec: WorkloadSpec, policy: Box<dyn SchedPolicy>, mut make_gen: F) -> Self
    where
        F: FnMut(&WorkloadSpec, &Rc<DirectorySet>, u32) -> Box<dyn OpGenerator>,
    {
        spec.validate().expect("invalid workload specification");
        let mut machine = Machine::new(spec.machine.clone());

        let mut volume = Volume::build_benchmark(spec.n_dirs, spec.entries_per_dir)
            .expect("benchmark volume construction failed");
        volume.map_into(machine.memory_mut());

        let mut engine = Engine::new(machine, policy, spec.runtime);

        // Register every directory (and its spin lock) with the runtime and
        // the policy, as the annotated application would.
        let mut locks = Vec::with_capacity(volume.dir_count());
        for dir in volume.directories() {
            let lock = engine.register_lock(dir.lock_addr);
            engine.register_object(directory_descriptor(dir, lock));
            locks.push(lock);
        }
        let dirs = Rc::new(DirectorySet {
            dirs: volume.directories().cloned().collect(),
            locks,
        });

        // One lookup thread per core (times threads_per_core), mirroring
        // "a thread on each core repeatedly looking up a randomly chosen
        // file from a randomly chosen directory".
        for t in 0..spec.total_threads() {
            let core = t % spec.machine.total_cores();
            let gen = make_gen(&spec, &dirs, t);
            engine.spawn(core, Box::new(OpBehaviour::new(gen)));
        }

        // Install the fault schedule last, so an `at = 0` edge still fires
        // after every thread exists. An empty plan is a no-op.
        engine.set_fault_plan(&spec.fault_plan);

        Self {
            spec,
            engine,
            volume,
            dirs,
        }
    }

    /// The underlying engine (e.g. for cache-occupancy snapshots).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The benchmark volume.
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// The specification this experiment was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The directory set shared by the workload threads.
    pub fn directories(&self) -> &DirectorySet {
        &self.dirs
    }

    /// The simulated-memory regions of the benchmark directories (labelled
    /// with the directory index), for occupancy snapshots.
    pub fn directory_regions(&self) -> Vec<Region> {
        self.engine
            .machine()
            .memory()
            .regions()
            .filter(|r| r.label < 0xF000_0000)
            .copied()
            .collect()
    }

    /// Runs the warm-up phase followed by the measurement window and
    /// returns the measurement.
    pub fn run(&mut self) -> Measurement {
        self.engine.run_until_ops(self.spec.warmup_ops);
        let window = self.engine.run_window(self.spec.measure_cycles);
        let machine = self.engine.machine();
        let dram_loads = (0..self.spec.machine.total_cores())
            .map(|c| machine.counters(c).dram_loads)
            .collect();
        let migrations = (0..self.spec.machine.total_cores())
            .map(|c| machine.counters(c).migrations_in)
            .sum();
        Measurement {
            policy: self.engine.policy().name().to_string(),
            total_bytes: self.volume.total_directory_bytes(),
            window,
            lock_contention: self.engine.locks().total_contention(),
            interconnect: machine.interconnect_stats(),
            dram_loads,
            migrations,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_once(spec: WorkloadSpec, policy: Box<dyn SchedPolicy>) -> Measurement {
    Experiment::build(spec, policy).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_runtime::NullPolicy;
    use o2_sim::ContentionModel;

    fn small_spec(n_dirs: u32) -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default(n_dirs);
        // Keep unit tests fast: a smaller machine and shorter windows.
        spec.machine = o2_sim::MachineConfig::quad4();
        spec.machine.contention = ContentionModel::None;
        spec.warmup_ops = 200;
        spec.measure_cycles = 500_000;
        spec
    }

    #[test]
    fn build_registers_every_directory_and_spawns_one_thread_per_core() {
        let spec = small_spec(8);
        let exp = Experiment::build(spec, Box::new(NullPolicy));
        assert_eq!(exp.directories().len(), 8);
        assert_eq!(exp.engine().live_threads(), 4);
        assert_eq!(exp.directory_regions().len(), 8);
        assert!(exp.volume().is_mapped());
    }

    #[test]
    fn run_produces_nonzero_throughput() {
        let mut exp = Experiment::build(small_spec(8), Box::new(NullPolicy));
        let m = exp.run();
        assert!(m.window.ops > 0);
        assert!(m.kres_per_sec() > 0.0);
        assert_eq!(m.total_bytes, 8 * 32_000);
        assert_eq!(m.policy, "thread-scheduler");
        assert_eq!(m.dram_loads.len(), 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut exp = Experiment::build(small_spec(6), Box::new(NullPolicy));
            let m = exp.run();
            (m.window.ops, m.window.end, m.lock_contention)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_give_different_interleavings() {
        let run = |seed| {
            let mut spec = small_spec(6);
            spec.seed = seed;
            let mut exp = Experiment::build(spec, Box::new(NullPolicy));
            exp.run().window.ops
        };
        // Throughput will be similar but the exact op count differs.
        assert_ne!(run(1), run(2));
    }
}
