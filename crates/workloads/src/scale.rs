//! The million-object scale tier.
//!
//! The directory benchmark tops out at a few thousand objects: every
//! directory is a mapped FAT volume with entries, locks and lookup costs.
//! This module strips the workload down to what the scale question needs —
//! `n` fixed-size objects, a Zipfian access stream, one annotated
//! read+compute operation per request — so the object count can sweep
//! from 1e4 to 1e7 while everything around it stays constant:
//!
//! * object addresses are computed, not stored: a handful of large
//!   per-chip regions and an index→address formula, no per-object `Vec`
//!   anywhere on the workload side;
//! * the popularity distribution is sampled in O(1) per draw by Hörmann &
//!   Derflinger rejection-inversion ([`ZipfSampler`]), instead of the
//!   O(n) CDF scan the directory chooser uses — at 1e7 objects a CDF scan
//!   would dominate the run;
//! * the engine and policy are pre-sized via `reserve_objects`, so the
//!   steady-state hot path never grows a table, and the experiment
//!   reports the accounted bytes-per-object from `footprint_bytes`;
//! * latency comes from the constant-memory sketches — the runtime's
//!   service-latency recorder, plus (in open-loop mode) the shared
//!   arrival→completion recorder of [`crate::open_loop::OpenLoopGen`].

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use o2_metrics::{LatencyRecorder, LatencySummary};
use o2_runtime::{
    AccessKind, BehaviourCtx, Engine, ObjectDescriptor, OpBehaviour, OpBuilder, OpGenerator,
    PolicyReplicationStats, RunWindow, RuntimeConfig, SchedPolicy,
};
use o2_sim::{Machine, MachineConfig};

use crate::open_loop::OpenLoopGen;

/// Specification of a scale-tier run.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Runtime configuration (event core, epoch length, ...).
    pub runtime: RuntimeConfig,
    /// Number of objects (the sweep axis; up to 1e7).
    pub n_objects: u64,
    /// Size of every object in bytes.
    pub object_size: u64,
    /// Worker threads per core.
    pub threads_per_core: u32,
    /// Zipf exponent of the access popularity.
    pub zipf_exponent: f64,
    /// Compute cycles per operation, after the object read.
    pub compute_cycles: u64,
    /// Base seed; per-thread streams derive from it.
    pub seed: u64,
    /// Operations to complete before the measurement window.
    pub warmup_ops: u64,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
    /// Mean inter-arrival gap in cycles per thread: `Some` switches the
    /// workload to open-loop arrivals, `None` keeps the closed loop.
    pub open_loop_mean_gap: Option<f64>,
    /// Fraction of operations that declare themselves reads at `ct_start`
    /// (the rest are writes). A read-heavy mix is what lets a
    /// replica-serving policy spread the Zipf head across cores; writes
    /// force invalidation. `0.0` reproduces the old all-write stream
    /// without consuming any extra randomness.
    pub read_fraction: f64,
}

impl ScaleSpec {
    /// A scale run over `n_objects` with defaults sized for tests; the
    /// experiment layer overrides machine and windows.
    pub fn new(n_objects: u64) -> Self {
        Self {
            machine: MachineConfig::quad4(),
            runtime: RuntimeConfig::default(),
            n_objects,
            object_size: 64,
            threads_per_core: 1,
            zipf_exponent: 1.1,
            compute_cycles: 150,
            seed: 42,
            warmup_ops: 1_000,
            measure_cycles: 1_000_000,
            open_loop_mean_gap: None,
            read_fraction: 0.0,
        }
    }

    /// Total worker threads.
    pub fn total_threads(&self) -> u32 {
        self.machine.total_cores() * self.threads_per_core.max(1)
    }

    /// Checks the specification for nonsense values.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_objects == 0 {
            return Err("n_objects must be at least 1".into());
        }
        if self.object_size == 0 {
            return Err("object_size must be at least 1 byte".into());
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent > 0.0) {
            return Err("zipf_exponent must be positive".into());
        }
        if let Some(gap) = self.open_loop_mean_gap {
            if !(gap.is_finite() && gap > 0.0) {
                return Err("open_loop_mean_gap must be positive".into());
            }
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err("read_fraction must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Computed object layout: per-chip base addresses plus an
/// index→address formula. Deliberately O(chips), not O(objects).
#[derive(Debug)]
struct ObjectMap {
    bases: Vec<u64>,
    per_chip: u64,
    object_size: u64,
}

impl ObjectMap {
    fn addr_of(&self, index: u64) -> u64 {
        let chip = (index / self.per_chip) as usize;
        self.bases[chip] + (index % self.per_chip) * self.object_size
    }
}

/// O(1) Zipf sampling over `{0, .., n-1}` by rejection inversion
/// (Hörmann & Derflinger, "Rejection-inversion to generate variates from
/// monotone discrete distributions", 1996). The directory chooser's CDF
/// scan is O(n) per draw and precomputes an O(n) table — fine for a few
/// thousand directories, fatal for 1e7 objects.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    exponent: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

/// `log(1+x)/x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(exp(x)-1)/x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is not finite and positive.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n >= 1, "zipf sampler needs at least one rank");
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "zipf exponent must be positive"
        );
        let h_x1 = Self::h_integral(1.5, exponent) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, exponent);
        let threshold = 2.0
            - Self::h_integral_inverse(
                Self::h_integral(2.5, exponent) - Self::h(2.0, exponent),
                exponent,
            );
        Self {
            n,
            exponent,
            h_x1,
            h_n,
            threshold,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Primitive of the rank weight `h(x) = x^-exponent`.
    fn h_integral(x: f64, e: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - e) * log_x) * log_x
    }

    fn h(x: f64, e: f64) -> f64 {
        (-e * x.ln()).exp()
    }

    fn h_integral_inverse(x: f64, e: f64) -> f64 {
        let mut t = x * (1.0 - e);
        // Clamp round-off: t may dip just below the codomain edge.
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draws a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.exponent);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold
                || u >= Self::h_integral(k + 0.5, self.exponent) - Self::h(k, self.exponent)
            {
                return k as u64 - 1;
            }
        }
    }
}

/// The per-thread scale generator: draw a Zipf rank, read that object,
/// compute, all inside one annotated operation. No locks — at this tier
/// the interesting contention is for cache capacity, not for entries.
pub struct ScaleGen {
    map: Rc<ObjectMap>,
    zipf: ZipfSampler,
    compute_cycles: u64,
    read_fraction: f64,
    rng: StdRng,
    ops_generated: u64,
    max_ops: Option<u64>,
}

impl ScaleGen {
    /// Draws this operation's declared access kind. The degenerate mixes
    /// (all-write, all-read) consume no randomness, so a `read_fraction`
    /// of exactly 0 leaves the legacy operation stream byte-identical.
    fn draw_kind(&mut self) -> AccessKind {
        if self.read_fraction <= 0.0 {
            return AccessKind::Write;
        }
        // Short-circuit: an all-read mix also consumes no randomness.
        if self.read_fraction >= 1.0 || self.rng.gen::<f64>() < self.read_fraction {
            AccessKind::Read
        } else {
            AccessKind::Write
        }
    }
}

impl OpGenerator for ScaleGen {
    fn next_op(&mut self, _ctx: &BehaviourCtx) -> Vec<o2_runtime::Action> {
        if let Some(max) = self.max_ops {
            if self.ops_generated >= max {
                return Vec::new();
            }
        }
        self.ops_generated += 1;
        let index = self.zipf.sample(&mut self.rng);
        let addr = self.map.addr_of(index);
        let kind = self.draw_kind();
        OpBuilder::annotated_kind(addr, kind)
            .read(addr, self.map.object_size)
            .compute(self.compute_cycles)
            .finish()
    }
}

/// The measurement produced by [`ScaleExperiment::run`].
#[derive(Debug, Clone)]
pub struct ScaleMeasurement {
    /// Name of the scheduling policy.
    pub policy: String,
    /// Objects in the run (the sweep axis).
    pub n_objects: u64,
    /// The measurement window.
    pub window: RunWindow,
    /// Service latency (`ct_start`→`ct_end`) percentiles from the
    /// runtime's sketch.
    pub service_latency: LatencySummary,
    /// Arrival→completion percentiles; `None` in closed-loop runs.
    pub arrival_latency: Option<LatencySummary>,
    /// Accounted heap bytes of the object-indexed state (runtime index +
    /// policy tables + sketches).
    pub footprint_bytes: u64,
    /// `IdleUntil` sleeps taken (nonzero only in open-loop runs that
    /// keep up with the offered load).
    pub sleeps: u64,
    /// Operation migrations performed over the whole run.
    pub migrations: u64,
    /// Replica promotion/demotion/invalidation/serving counters from the
    /// policy (all zero for policies without replica serving).
    pub replication: PolicyReplicationStats,
}

impl ScaleMeasurement {
    /// Throughput in thousands of operations per second.
    pub fn kops_per_sec(&self) -> f64 {
        self.window.kops_per_second()
    }

    /// Accounted bytes of object-indexed state per object.
    pub fn bytes_per_object(&self) -> f64 {
        self.footprint_bytes as f64 / self.n_objects.max(1) as f64
    }
}

/// A fully constructed scale-tier run.
pub struct ScaleExperiment {
    spec: ScaleSpec,
    engine: Engine,
    arrival_latency: Option<Rc<RefCell<LatencyRecorder>>>,
}

/// Seed for the shared arrival-latency sketch (fixed: determinism
/// requires the same compaction schedule in every run).
const ARRIVAL_LATENCY_SEED: u64 = 0x6172_7269_7661_6c73;

impl ScaleExperiment {
    /// Builds the machine, the object space and the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid.
    pub fn build(spec: ScaleSpec, policy: Box<dyn SchedPolicy>) -> Self {
        spec.validate().expect("invalid scale specification");
        let mut machine = Machine::new(spec.machine.clone());

        // A handful of large regions — one per chip — instead of one
        // region (or worse, one allocation) per object. Regions are
        // metadata, but 1e7 of them would still cost a BTree node per
        // object on every address lookup.
        let chips = spec.machine.chips.max(1) as u64;
        let per_chip = spec.n_objects.div_ceil(chips);
        let bases: Vec<u64> = (0..chips)
            .map(|chip| {
                machine
                    .memory_mut()
                    .alloc_on(per_chip * spec.object_size, chip as u32, chip)
                    .addr
            })
            .collect();
        let map = Rc::new(ObjectMap {
            bases,
            per_chip,
            object_size: spec.object_size,
        });

        let mut engine = Engine::new(machine, policy, spec.runtime);

        // Pre-size everything object-indexed, then register eagerly: the
        // measured window must never grow an interner or a table.
        engine.reserve_objects(spec.n_objects as usize);
        for i in 0..spec.n_objects {
            let addr = map.addr_of(i);
            engine.register_object(ObjectDescriptor::new(addr, addr, spec.object_size));
        }

        let arrival_latency = spec
            .open_loop_mean_gap
            .map(|_| Rc::new(RefCell::new(LatencyRecorder::new(ARRIVAL_LATENCY_SEED))));

        for t in 0..spec.total_threads() {
            let core = t % spec.machine.total_cores();
            let gen = ScaleGen {
                map: Rc::clone(&map),
                zipf: ZipfSampler::new(spec.n_objects, spec.zipf_exponent),
                compute_cycles: spec.compute_cycles,
                read_fraction: spec.read_fraction,
                rng: StdRng::seed_from_u64(spec.seed.wrapping_add(u64::from(t) * 0x9E37_79B9)),
                ops_generated: 0,
                max_ops: None,
            };
            match (&arrival_latency, spec.open_loop_mean_gap) {
                (Some(rec), Some(gap)) => {
                    let wrapped = OpenLoopGen::new(
                        gen,
                        gap,
                        spec.seed
                            .wrapping_add(0xA5A5_A5A5)
                            .wrapping_add(u64::from(t)),
                        Rc::clone(rec),
                    );
                    engine.spawn(core, Box::new(OpBehaviour::new(wrapped)));
                }
                _ => {
                    engine.spawn(core, Box::new(OpBehaviour::new(gen)));
                }
            }
        }

        Self {
            spec,
            engine,
            arrival_latency,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The specification this run was built from.
    pub fn spec(&self) -> &ScaleSpec {
        &self.spec
    }

    /// Runs warm-up then the measurement window and reports.
    pub fn run(&mut self) -> ScaleMeasurement {
        self.engine.run_until_ops(self.spec.warmup_ops);
        let window = self.engine.run_window(self.spec.measure_cycles);
        let stats = self.engine.sched_stats();
        let migrations = (0..self.spec.machine.total_cores())
            .map(|c| self.engine.machine().counters(c).migrations_in)
            .sum();
        ScaleMeasurement {
            policy: self.engine.policy().name().to_string(),
            n_objects: self.spec.n_objects,
            window,
            service_latency: stats.op_latency,
            arrival_latency: self.arrival_latency.as_ref().map(|r| r.borrow().summary()),
            footprint_bytes: self.engine.footprint_bytes(),
            sleeps: stats.sleeps,
            migrations,
            replication: self.engine.policy().replication_stats(),
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_scale(spec: ScaleSpec, policy: Box<dyn SchedPolicy>) -> ScaleMeasurement {
    ScaleExperiment::build(spec, policy).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DirChooser;
    use crate::spec::Popularity;
    use o2_runtime::NullPolicy;
    use o2_sim::ContentionModel;

    fn small_spec(n: u64) -> ScaleSpec {
        let mut spec = ScaleSpec::new(n);
        spec.machine.contention = ContentionModel::None;
        spec.warmup_ops = 200;
        spec.measure_cycles = 400_000;
        spec
    }

    #[test]
    fn zipf_sampler_matches_the_cdf_chooser() {
        // The O(1) rejection-inversion sampler and the O(n) CDF chooser
        // target the same distribution; at small n their histograms must
        // agree with the exact weights and with each other.
        let n = 50u64;
        let exponent = 1.2;
        let samples = 200_000u64;
        let sampler = ZipfSampler::new(n, exponent);
        let mut rng = StdRng::seed_from_u64(9);
        let mut h_fast = vec![0u64; n as usize];
        for _ in 0..samples {
            h_fast[sampler.sample(&mut rng) as usize] += 1;
        }
        let chooser = DirChooser::new(n as u32, Popularity::Zipf { exponent });
        let mut rng = StdRng::seed_from_u64(10);
        let mut h_cdf = vec![0u64; n as usize];
        for _ in 0..samples {
            h_cdf[chooser.choose(&mut rng, 0) as usize] += 1;
        }
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut tv_fast = 0.0;
        let mut tv_cdf = 0.0;
        for i in 0..n as usize {
            let exact = weights[i] / total;
            tv_fast += (h_fast[i] as f64 / samples as f64 - exact).abs();
            tv_cdf += (h_cdf[i] as f64 / samples as f64 - exact).abs();
        }
        assert!(tv_fast / 2.0 < 0.01, "sampler off the exact law: {tv_fast}");
        assert!(tv_cdf / 2.0 < 0.01, "chooser off the exact law: {tv_cdf}");
        // Head probabilities agree tightly between the two methods.
        for i in 0..10 {
            let a = h_fast[i] as f64;
            let b = h_cdf[i] as f64;
            assert!(
                (a - b).abs() / b.max(1.0) < 0.1,
                "rank {i}: sampler {a} vs chooser {b}"
            );
        }
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_in_range() {
        let sampler = ZipfSampler::new(1_000_000, 0.99);
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200)
                .map(|_| sampler.sample(&mut rng))
                .collect::<Vec<_>>()
        };
        let a = seq(3);
        assert_eq!(a, seq(3));
        assert_ne!(a, seq(4));
        assert!(a.iter().all(|&k| k < 1_000_000));
        // Exponent exactly 1 exercises the continuous-at-one helpers.
        let s1 = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(s1.sample(&mut rng) < 100);
        }
        let single = ZipfSampler::new(1, 1.3);
        assert_eq!(single.sample(&mut rng), 0);
    }

    #[test]
    fn closed_loop_scale_run_reports_throughput_and_footprint() {
        let mut exp = ScaleExperiment::build(small_spec(2_000), Box::new(NullPolicy));
        let m = exp.run();
        assert!(m.window.ops > 0);
        assert!(m.kops_per_sec() > 0.0);
        assert_eq!(m.n_objects, 2_000);
        assert!(m.footprint_bytes > 0);
        assert!(m.bytes_per_object() > 0.0);
        assert_eq!(m.service_latency.count, m.window.ops + 200);
        assert!(m.service_latency.p50 > 0);
        assert!(m.arrival_latency.is_none());
        assert_eq!(m.sleeps, 0, "closed loop must never sleep");
    }

    #[test]
    fn open_loop_scale_run_sleeps_and_records_arrival_latency() {
        let mut spec = small_spec(500);
        // A mean gap far above the service time: the system keeps up,
        // threads sleep between requests.
        spec.open_loop_mean_gap = Some(5_000.0);
        let mut exp = ScaleExperiment::build(spec, Box::new(NullPolicy));
        let m = exp.run();
        assert!(m.window.ops > 0);
        assert!(m.sleeps > 0, "open loop under light load must sleep");
        let arrival = m.arrival_latency.expect("arrival latency present");
        assert!(arrival.count > 0);
        assert!(arrival.p50 > 0);
    }

    #[test]
    fn overload_shows_up_as_queueing_delay() {
        // Arrivals far faster than service: arrival→completion latency
        // must dwarf the service latency, which is the whole point of the
        // open loop.
        let mut spec = small_spec(500);
        spec.open_loop_mean_gap = Some(10.0);
        let mut exp = ScaleExperiment::build(spec, Box::new(NullPolicy));
        let m = exp.run();
        let arrival = m.arrival_latency.expect("arrival latency present");
        assert!(
            arrival.p99 > m.service_latency.p99.saturating_mul(5),
            "queueing delay invisible: arrival p99 {} vs service p99 {}",
            arrival.p99,
            m.service_latency.p99
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut exp = ScaleExperiment::build(small_spec(1_000), Box::new(NullPolicy));
            let m = exp.run();
            (m.window.ops, m.window.end, m.service_latency)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn footprint_does_not_grow_during_the_measured_window() {
        // The pre-sized hot path: once objects are registered, running
        // the workload must not grow any object-indexed structure. The
        // latency sketch is excluded: it allocates its fixed buffers
        // lazily and adds compaction levels logarithmically — bounded,
        // but not constant across a window.
        let indexed = |e: &Engine| e.footprint_bytes() - e.op_latency().footprint_bytes();
        let mut exp = ScaleExperiment::build(small_spec(2_000), Box::new(NullPolicy));
        exp.engine.run_until_ops(200);
        let before = indexed(&exp.engine);
        exp.engine.run_window(400_000);
        assert_eq!(
            indexed(&exp.engine),
            before,
            "object-indexed state grew during the measured window"
        );
    }
}
