//! The inter-chip interconnect: a square of four chips (or a generic mesh
//! for other chip counts), hop-distance computation, message accounting and
//! an optional contention model.
//!
//! The paper's AMD system connects four chips "by a square interconnect"
//! that "carries cache coherence broadcasts to locate and invalidate data,
//! as well as point-to-point transfers of cache lines". Remote latencies in
//! the paper range from 127 cycles (same chip) to 336 cycles (most distant
//! DRAM bank); we model the spread with hop counts.

use crate::config::ContentionModel;
use crate::fault::{splitmix64, LinkDegradation};

/// Kinds of messages carried by the interconnect, tracked separately so
/// experiments can report coherence traffic versus data traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Broadcast probe to locate or invalidate a line.
    CoherenceBroadcast,
    /// Point-to-point transfer of a cache line.
    LineTransfer,
    /// DRAM fill crossing the interconnect.
    DramFill,
    /// Thread-migration context transfer.
    Migration,
}

/// Cumulative interconnect statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterconnectStats {
    /// Coherence broadcast messages.
    pub coherence_broadcasts: u64,
    /// Point-to-point line transfers.
    pub line_transfers: u64,
    /// DRAM fills that crossed chips.
    pub dram_fills: u64,
    /// Migration context transfers.
    pub migrations: u64,
    /// Total hop-weighted traffic (messages x hops).
    pub hop_traffic: u64,
    /// Extra cycles added by contention across all messages.
    pub contention_cycles: u64,
    /// Migration messages dropped by a degraded link (fault injection).
    pub migrations_lost: u64,
    /// Extra cycles charged by link degradation (fault injection).
    pub degradation_cycles: u64,
}

impl InterconnectStats {
    /// Total messages of all kinds.
    pub fn total_messages(&self) -> u64 {
        self.coherence_broadcasts + self.line_transfers + self.dram_fills + self.migrations
    }
}

/// The interconnect model.
#[derive(Debug, Clone)]
pub struct Interconnect {
    chips: u32,
    contention: ContentionModel,
    stats: InterconnectStats,
    /// Busy cycles accumulated inside the current contention window.
    window_busy: u64,
    /// Start of the current contention window (virtual time).
    window_start: u64,
    /// Utilization of the previous window (0.0–1.0).
    last_utilization: f64,
    /// Fault-injected link degradation; `None` (the default) disables the
    /// fault plane entirely — no loss draws, no extra latency.
    degradation: Option<LinkDegradation>,
    /// Seed for the migration-loss draws.
    loss_seed: u64,
    /// Number of loss draws made so far (the draw counter is the only
    /// RNG state, so degraded runs replay exactly).
    loss_draws: u64,
}

impl Interconnect {
    /// Creates an interconnect for `chips` chips.
    pub fn new(chips: u32, contention: ContentionModel) -> Self {
        Self {
            chips,
            contention,
            stats: InterconnectStats::default(),
            window_busy: 0,
            window_start: 0,
            last_utilization: 0.0,
            degradation: None,
            loss_seed: 0,
            loss_draws: 0,
        }
    }

    /// Installs (or clears, with `None`) fault-injected link degradation.
    /// `seed` feeds the deterministic migration-loss draws.
    pub fn set_degradation(&mut self, degradation: Option<LinkDegradation>, seed: u64) {
        self.degradation = degradation;
        if degradation.is_some() {
            self.loss_seed = seed;
        }
    }

    /// The currently installed degradation, if any.
    pub fn degradation(&self) -> Option<LinkDegradation> {
        self.degradation
    }

    /// Draws whether the next migration message is lost on a degraded
    /// link. Never draws (and always returns `false`) while the link is
    /// healthy, so healthy runs consume no randomness at all.
    pub fn lose_migration(&mut self) -> bool {
        let Some(deg) = self.degradation else {
            return false;
        };
        if deg.loss_per_mille == 0 {
            return false;
        }
        self.loss_draws += 1;
        let draw = splitmix64(self.loss_seed ^ self.loss_draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let lost = draw % 1000 < u64::from(deg.loss_per_mille.min(1000));
        if lost {
            self.stats.migrations_lost += 1;
        }
        lost
    }

    /// Number of chips connected.
    pub fn chips(&self) -> u32 {
        self.chips
    }

    /// Hop distance between two chips.
    ///
    /// For the four-chip square of the paper the distances are 0 (same
    /// chip), 1 (adjacent edge) or 2 (diagonal). For other chip counts a
    /// simple ring distance is used.
    pub fn hops(&self, from_chip: u32, to_chip: u32) -> u32 {
        if from_chip == to_chip {
            return 0;
        }
        if self.chips <= 1 {
            return 0;
        }
        if self.chips == 4 {
            // Square: chips 0-1-3-2-0 form the ring; 0<->3 and 1<->2 are
            // diagonals (two hops).
            let diagonal = matches!(
                (from_chip.min(to_chip), from_chip.max(to_chip)),
                (0, 3) | (1, 2)
            );
            if diagonal {
                2
            } else {
                1
            }
        } else {
            // Generic ring for other chip counts.
            let d = from_chip.abs_diff(to_chip);
            d.min(self.chips - d)
        }
    }

    /// Maximum hop distance in this topology.
    pub fn max_hops(&self) -> u32 {
        if self.chips <= 1 {
            0
        } else if self.chips == 4 {
            2
        } else {
            self.chips / 2
        }
    }

    /// Records a message and returns the extra latency caused by
    /// contention (0 when the contention model is disabled or the link is
    /// lightly loaded).
    ///
    /// `now` is the sender's local virtual time and `busy_cycles` the base
    /// transfer cost of the message, used to account utilization.
    pub fn send(
        &mut self,
        kind: MessageKind,
        from_chip: u32,
        to_chip: u32,
        now: u64,
        busy_cycles: u64,
    ) -> u64 {
        let hops = self.hops(from_chip, to_chip);
        match kind {
            MessageKind::CoherenceBroadcast => self.stats.coherence_broadcasts += 1,
            MessageKind::LineTransfer => self.stats.line_transfers += 1,
            MessageKind::DramFill => self.stats.dram_fills += 1,
            MessageKind::Migration => self.stats.migrations += 1,
        }
        self.stats.hop_traffic += u64::from(hops);

        // A degraded link slows every off-chip message, hop by hop.
        let degraded_extra = match self.degradation {
            Some(deg) if hops > 0 => {
                let extra = deg.extra_cycles_per_hop.saturating_mul(u64::from(hops));
                self.stats.degradation_cycles += extra;
                extra
            }
            _ => 0,
        };

        degraded_extra
            + match self.contention {
                ContentionModel::None => 0,
                ContentionModel::Linear { slope, window } => {
                    // Roll the utilization window forward if needed.
                    if now >= self.window_start + window {
                        let elapsed = (now - self.window_start).max(1);
                        self.last_utilization = (self.window_busy as f64 / elapsed as f64).min(1.0);
                        self.window_start = now;
                        self.window_busy = 0;
                    }
                    if hops > 0 {
                        self.window_busy += busy_cycles;
                    }
                    let penalty = (slope as f64 * self.last_utilization) as u64;
                    if hops > 0 && penalty > 0 {
                        self.stats.contention_cycles += penalty;
                        penalty
                    } else {
                        0
                    }
                }
            }
    }

    /// Current interconnect statistics.
    pub fn stats(&self) -> InterconnectStats {
        self.stats
    }

    /// Utilization observed in the last completed accounting window.
    pub fn utilization(&self) -> f64 {
        self.last_utilization
    }

    /// Resets the statistics (but not the utilization window state).
    pub fn reset_stats(&mut self) {
        self.stats = InterconnectStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hop_distances() {
        let ic = Interconnect::new(4, ContentionModel::None);
        assert_eq!(ic.hops(0, 0), 0);
        assert_eq!(ic.hops(0, 1), 1);
        assert_eq!(ic.hops(0, 2), 1);
        assert_eq!(ic.hops(0, 3), 2);
        assert_eq!(ic.hops(1, 2), 2);
        assert_eq!(ic.hops(2, 3), 1);
        assert_eq!(ic.hops(3, 0), 2);
        assert_eq!(ic.max_hops(), 2);
    }

    #[test]
    fn single_chip_has_no_hops() {
        let ic = Interconnect::new(1, ContentionModel::None);
        assert_eq!(ic.hops(0, 0), 0);
        assert_eq!(ic.max_hops(), 0);
    }

    #[test]
    fn ring_distance_for_other_chip_counts() {
        let ic = Interconnect::new(8, ContentionModel::None);
        assert_eq!(ic.hops(0, 1), 1);
        assert_eq!(ic.hops(0, 4), 4);
        assert_eq!(ic.hops(0, 7), 1);
        assert_eq!(ic.max_hops(), 4);
    }

    #[test]
    fn messages_are_counted_by_kind() {
        let mut ic = Interconnect::new(4, ContentionModel::None);
        ic.send(MessageKind::CoherenceBroadcast, 0, 1, 0, 50);
        ic.send(MessageKind::LineTransfer, 0, 3, 10, 80);
        ic.send(MessageKind::DramFill, 2, 2, 20, 100);
        ic.send(MessageKind::Migration, 1, 2, 30, 60);
        let s = ic.stats();
        assert_eq!(s.coherence_broadcasts, 1);
        assert_eq!(s.line_transfers, 1);
        assert_eq!(s.dram_fills, 1);
        assert_eq!(s.migrations, 1);
        assert_eq!(s.total_messages(), 4);
        // hops: 1 + 2 + 0 + 2 = 5
        assert_eq!(s.hop_traffic, 5);
    }

    #[test]
    fn no_contention_model_never_penalises() {
        let mut ic = Interconnect::new(4, ContentionModel::None);
        for i in 0..1000 {
            assert_eq!(ic.send(MessageKind::LineTransfer, 0, 3, i, 300), 0);
        }
    }

    #[test]
    fn linear_contention_kicks_in_under_load() {
        let mut ic = Interconnect::new(
            4,
            ContentionModel::Linear {
                slope: 100,
                window: 1000,
            },
        );
        // Saturate the first window: 2000 busy cycles over a 1000-cycle
        // window clamps utilization at 1.0.
        for i in 0..20 {
            ic.send(MessageKind::LineTransfer, 0, 1, i * 50, 100);
        }
        // First message of the next window sees the saturated utilization.
        let penalty = ic.send(MessageKind::LineTransfer, 0, 1, 2000, 100);
        assert_eq!(penalty, 100);
        assert!(ic.utilization() >= 0.99);
        assert!(ic.stats().contention_cycles >= 100);
    }

    #[test]
    fn local_messages_do_not_pay_contention() {
        let mut ic = Interconnect::new(
            4,
            ContentionModel::Linear {
                slope: 100,
                window: 100,
            },
        );
        for i in 0..50 {
            ic.send(MessageKind::LineTransfer, 0, 1, i * 10, 50);
        }
        let penalty = ic.send(MessageKind::LineTransfer, 2, 2, 1000, 50);
        assert_eq!(penalty, 0);
    }

    #[test]
    fn degraded_link_charges_extra_per_hop() {
        let mut ic = Interconnect::new(4, ContentionModel::None);
        assert_eq!(ic.send(MessageKind::LineTransfer, 0, 3, 0, 80), 0);
        ic.set_degradation(
            Some(LinkDegradation {
                loss_per_mille: 0,
                extra_cycles_per_hop: 100,
            }),
            7,
        );
        // Two hops on the diagonal -> 200 extra cycles; local sends free.
        assert_eq!(ic.send(MessageKind::LineTransfer, 0, 3, 10, 80), 200);
        assert_eq!(ic.send(MessageKind::LineTransfer, 2, 2, 20, 80), 0);
        assert_eq!(ic.stats().degradation_cycles, 200);
        ic.set_degradation(None, 0);
        assert_eq!(ic.send(MessageKind::LineTransfer, 0, 3, 30, 80), 0);
    }

    #[test]
    fn migration_loss_is_deterministic_and_healthy_links_never_draw() {
        let run = |seed: u64| {
            let mut ic = Interconnect::new(4, ContentionModel::None);
            ic.set_degradation(
                Some(LinkDegradation {
                    loss_per_mille: 500,
                    extra_cycles_per_hop: 0,
                }),
                seed,
            );
            (0..64).map(|_| ic.lose_migration()).collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // Roughly half the draws are losses at 500 per-mille.
        let losses = run(42).iter().filter(|&&l| l).count();
        assert!((16..=48).contains(&losses), "losses = {losses}");

        let mut healthy = Interconnect::new(4, ContentionModel::None);
        for _ in 0..100 {
            assert!(!healthy.lose_migration());
        }
        assert_eq!(healthy.stats().migrations_lost, 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut ic = Interconnect::new(4, ContentionModel::None);
        ic.send(MessageKind::LineTransfer, 0, 1, 0, 10);
        ic.reset_stats();
        assert_eq!(ic.stats().total_messages(), 0);
    }
}
