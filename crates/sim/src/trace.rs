//! A bounded trace of recent memory accesses, useful for debugging
//! workloads and for asserting access patterns in tests.

use std::collections::VecDeque;

use crate::latency::AccessOutcome;
use crate::machine::AccessKind;
use crate::memory::Addr;

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Core that issued the access.
    pub core: u32,
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Where the access was satisfied.
    pub outcome: AccessOutcome,
    /// Cycles charged.
    pub cost: u64,
}

/// A fixed-capacity ring buffer of [`TraceEntry`] values.
#[derive(Debug, Clone)]
pub struct AccessTrace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    total_recorded: u64,
    enabled: bool,
}

impl AccessTrace {
    /// Creates a trace that keeps the most recent `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
            enabled: true,
        }
    }

    /// Creates a disabled trace that records nothing (zero overhead).
    pub fn disabled() -> Self {
        Self {
            entries: VecDeque::new(),
            capacity: 0,
            total_recorded: 0,
            enabled: false,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an access (drops the oldest entry when full).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.total_recorded += 1;
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of accesses recorded since creation (including ones
    /// that have since been dropped from the ring).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Drops all retained entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of retained entries that were satisfied by DRAM.
    pub fn dram_count(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_dram()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(core: u32, addr: Addr, dram: bool) -> TraceEntry {
        TraceEntry {
            core,
            addr,
            kind: AccessKind::Read,
            outcome: if dram {
                AccessOutcome::Dram {
                    hops: 0,
                    streamed: false,
                }
            } else {
                AccessOutcome::L1Hit
            },
            cost: if dram { 230 } else { 3 },
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = AccessTrace::new(8);
        t.record(entry(0, 0x100, false));
        t.record(entry(1, 0x200, true));
        let v: Vec<_> = t.entries().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].addr, 0x100);
        assert_eq!(v[1].addr, 0x200);
        assert_eq!(t.dram_count(), 1);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = AccessTrace::new(3);
        for i in 0..5 {
            t.record(entry(0, i * 64, false));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let first = t.entries().next().unwrap();
        assert_eq!(first.addr, 2 * 64);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = AccessTrace::disabled();
        t.record(entry(0, 0, true));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_total() {
        let mut t = AccessTrace::new(4);
        t.record(entry(0, 0, false));
        t.record(entry(0, 64, false));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 2);
    }

    #[test]
    fn toggling_enabled_stops_and_resumes_recording() {
        let mut t = AccessTrace::new(4);
        t.set_enabled(false);
        t.record(entry(0, 0, false));
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(entry(0, 64, false));
        assert_eq!(t.len(), 1);
    }
}
