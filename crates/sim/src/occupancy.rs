//! Mapping cache contents back to application objects.
//!
//! Figure 2 of the paper shows *which directories* are resident in which
//! cache under a thread scheduler versus an O2 scheduler. This module
//! answers that question for any set of labelled address regions: given the
//! regions, it reports for every cache which objects are (partially)
//! resident and which objects are effectively off-chip.

use std::collections::HashMap;

use crate::machine::Machine;
use crate::memory::Region;

/// How much of one object is resident in one cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Residency {
    /// The object's label (e.g. directory index).
    pub label: u64,
    /// Lines of the object resident in the cache.
    pub lines_resident: u64,
    /// Total lines the object occupies.
    pub lines_total: u64,
}

impl Residency {
    /// Resident fraction (0.0–1.0).
    pub fn fraction(&self) -> f64 {
        if self.lines_total == 0 {
            0.0
        } else {
            self.lines_resident as f64 / self.lines_total as f64
        }
    }
}

/// A snapshot of object residency across the whole machine.
#[derive(Debug, Clone, Default)]
pub struct OccupancySnapshot {
    /// Per-core residency in private caches (L1+L2), indexed by core.
    pub private: Vec<Vec<Residency>>,
    /// Per-chip residency in the shared L3, indexed by chip.
    pub l3: Vec<Vec<Residency>>,
    /// Labels of objects with less than `on_chip_threshold` of their lines
    /// resident in any cache (the "off-chip" box of Figure 2).
    pub off_chip: Vec<u64>,
    /// Fraction of an object's lines that must be cached somewhere for the
    /// object to count as on-chip.
    pub on_chip_threshold: f64,
}

impl OccupancySnapshot {
    /// Objects at least half-resident in the given core's private caches.
    pub fn resident_in_core(&self, core: u32) -> Vec<u64> {
        self.private[core as usize]
            .iter()
            .filter(|r| r.fraction() >= 0.5)
            .map(|r| r.label)
            .collect()
    }

    /// Objects at least half-resident in the given chip's L3.
    pub fn resident_in_l3(&self, chip: u32) -> Vec<u64> {
        self.l3[chip as usize]
            .iter()
            .filter(|r| r.fraction() >= 0.5)
            .map(|r| r.label)
            .collect()
    }

    /// Number of distinct objects that are on-chip somewhere.
    pub fn distinct_on_chip(&self) -> usize {
        let mut labels: Vec<u64> = self
            .private
            .iter()
            .flatten()
            .chain(self.l3.iter().flatten())
            .filter(|r| r.lines_resident > 0)
            .map(|r| r.label)
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Total copies of object lines held on chip, divided by the number of
    /// distinct object lines held on chip: 1.0 means no duplication, higher
    /// values mean the same data is replicated in several caches.
    pub fn duplication_factor(&self) -> f64 {
        let mut per_label_copies: HashMap<u64, u64> = HashMap::new();
        let mut per_label_distinct: HashMap<u64, u64> = HashMap::new();
        for r in self
            .private
            .iter()
            .flatten()
            .chain(self.l3.iter().flatten())
        {
            *per_label_copies.entry(r.label).or_insert(0) += r.lines_resident;
            let d = per_label_distinct.entry(r.label).or_insert(0);
            *d = (*d).max(r.lines_resident);
        }
        let copies: u64 = per_label_copies.values().sum();
        let distinct: u64 = per_label_distinct.values().sum();
        if distinct == 0 {
            0.0
        } else {
            copies as f64 / distinct as f64
        }
    }
}

/// Computes the residency of each labelled region in each cache.
pub fn snapshot(machine: &Machine, regions: &[Region]) -> OccupancySnapshot {
    snapshot_with_threshold(machine, regions, 0.5)
}

/// Like [`snapshot`] but with an explicit on-chip threshold.
pub fn snapshot_with_threshold(
    machine: &Machine,
    regions: &[Region],
    on_chip_threshold: f64,
) -> OccupancySnapshot {
    let cfg = machine.config();
    let line = cfg.line_size;
    let cores = cfg.total_cores();
    let chips = cfg.chips;

    let lines_of = |r: &Region| -> (u64, u64) {
        let first = r.addr / line;
        let last = (r.addr + r.size - 1) / line;
        (first, last)
    };

    let mut private = Vec::with_capacity(cores as usize);
    for core in 0..cores {
        let mut per_obj = Vec::with_capacity(regions.len());
        for r in regions {
            let (first, last) = lines_of(r);
            let resident = (first..=last)
                .filter(|&l| machine.in_private_cache(core, l))
                .count() as u64;
            per_obj.push(Residency {
                label: r.label,
                lines_resident: resident,
                lines_total: last - first + 1,
            });
        }
        private.push(per_obj);
    }

    let mut l3 = Vec::with_capacity(chips as usize);
    for chip in 0..chips {
        let mut per_obj = Vec::with_capacity(regions.len());
        for r in regions {
            let (first, last) = lines_of(r);
            let resident = (first..=last).filter(|&l| machine.in_l3(chip, l)).count() as u64;
            per_obj.push(Residency {
                label: r.label,
                lines_resident: resident,
                lines_total: last - first + 1,
            });
        }
        l3.push(per_obj);
    }

    // An object is off-chip if no cache holds at least the threshold
    // fraction of it, mirroring the "off-chip" box in Figure 2.
    let mut off_chip = Vec::new();
    for (idx, r) in regions.iter().enumerate() {
        let best_private = private
            .iter()
            .map(|cores| cores[idx].fraction())
            .fold(0.0f64, f64::max);
        let best_l3 = l3
            .iter()
            .map(|chips| chips[idx].fraction())
            .fold(0.0f64, f64::max);
        if best_private.max(best_l3) < on_chip_threshold {
            off_chip.push(r.label);
        }
    }

    OccupancySnapshot {
        private,
        l3,
        off_chip,
        on_chip_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::machine::AccessKind;

    fn quad() -> Machine {
        let mut cfg = MachineConfig::quad4();
        cfg.contention = crate::config::ContentionModel::None;
        Machine::new(cfg)
    }

    #[test]
    fn touched_object_is_resident_in_the_touching_core() {
        let mut m = quad();
        let r0 = m.memory_mut().alloc(32 * 1024, 0);
        let r1 = m.memory_mut().alloc(32 * 1024, 1);
        m.access(0, r0.addr, r0.size, AccessKind::Read);
        let snap = snapshot(&m, &[r0, r1]);
        assert_eq!(snap.resident_in_core(0), vec![0]);
        assert!(snap.resident_in_core(1).is_empty());
        assert_eq!(snap.off_chip, vec![1]);
        assert_eq!(snap.distinct_on_chip(), 1);
    }

    #[test]
    fn duplication_factor_detects_replication() {
        let mut m = quad();
        let r = m.memory_mut().alloc(32 * 1024, 7);
        // All four cores read the same object: four private copies.
        for core in 0..4 {
            m.access(core, r.addr, r.size, AccessKind::Read);
        }
        let snap = snapshot(&m, &[r]);
        assert!(snap.duplication_factor() > 2.0);
        // Every core sees the object as resident.
        for core in 0..4 {
            assert_eq!(snap.resident_in_core(core), vec![7]);
        }
    }

    #[test]
    fn partitioned_objects_have_no_duplication() {
        let mut m = quad();
        let regions: Vec<_> = (0..4).map(|i| m.memory_mut().alloc(32 * 1024, i)).collect();
        for (core, r) in regions.iter().enumerate() {
            m.access(core as u32, r.addr, r.size, AccessKind::Read);
        }
        let snap = snapshot(&m, &regions);
        assert!((snap.duplication_factor() - 1.0).abs() < 0.05);
        assert_eq!(snap.distinct_on_chip(), 4);
        assert!(snap.off_chip.is_empty());
    }

    #[test]
    fn residency_fraction_handles_empty_objects() {
        let r = Residency {
            label: 0,
            lines_resident: 0,
            lines_total: 0,
        };
        assert_eq!(r.fraction(), 0.0);
    }

    #[test]
    fn threshold_controls_off_chip_classification() {
        let mut m = quad();
        let r = m.memory_mut().alloc(64 * 1024, 3);
        // Touch only the first quarter of the object.
        m.access(0, r.addr, 16 * 1024, AccessKind::Read);
        let strict = snapshot_with_threshold(&m, &[r], 0.9);
        assert_eq!(strict.off_chip, vec![3]);
        let loose = snapshot_with_threshold(&m, &[r], 0.1);
        assert!(loose.off_chip.is_empty());
    }
}
