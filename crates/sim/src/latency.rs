//! The latency model: converts "where was the line found" into cycles.
//!
//! Keeping this separate from the machine makes it easy to unit-test the
//! cost model against the numbers quoted in Section 5 of the paper, and to
//! sweep it for the Section 6.1 "future multicores" ablation.

use crate::config::LatencyConfig;

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the requesting core's L1.
    L1Hit,
    /// Hit in the requesting core's L2.
    L2Hit,
    /// Hit in the requesting chip's shared L3.
    L3Hit,
    /// Served from a cache of another core.
    RemoteCache {
        /// Interconnect hops between the requesting chip and the owner's
        /// chip (0 = same chip).
        hops: u32,
        /// Whether the access continued a sequential stream from the same
        /// remote source (models pipelined transfers).
        streamed: bool,
    },
    /// Served from DRAM.
    Dram {
        /// Interconnect hops between the requesting chip and the DRAM
        /// bank's home chip.
        hops: u32,
        /// Whether the access continued a sequential stream (models
        /// hardware prefetching and memory-level parallelism).
        streamed: bool,
    },
}

impl AccessOutcome {
    /// Whether the line had to be fetched from outside the requesting
    /// core's private caches.
    pub fn is_private_miss(&self) -> bool {
        !matches!(self, AccessOutcome::L1Hit | AccessOutcome::L2Hit)
    }

    /// Whether the access left the requesting chip.
    pub fn is_off_chip(&self) -> bool {
        matches!(
            self,
            AccessOutcome::RemoteCache { hops, .. } if *hops > 0
        ) || matches!(self, AccessOutcome::Dram { .. })
    }

    /// Whether the access was served by DRAM.
    pub fn is_dram(&self) -> bool {
        matches!(self, AccessOutcome::Dram { .. })
    }
}

/// The latency model proper.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    cfg: LatencyConfig,
}

impl LatencyModel {
    /// Creates a model from raw latency parameters.
    pub fn new(cfg: LatencyConfig) -> Self {
        Self { cfg }
    }

    /// The underlying parameters.
    pub fn config(&self) -> &LatencyConfig {
        &self.cfg
    }

    /// Cycles charged for an access with the given outcome.
    pub fn cost(&self, outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::L1Hit => self.cfg.l1_hit,
            AccessOutcome::L2Hit => self.cfg.l2_hit,
            AccessOutcome::L3Hit => self.cfg.l3_hit,
            AccessOutcome::RemoteCache { hops, streamed } => {
                if streamed {
                    self.cfg.remote_streamed
                } else {
                    match hops {
                        0 => self.cfg.remote_cache_same_chip,
                        1 => self.cfg.remote_cache_one_hop,
                        _ => self.cfg.remote_cache_two_hops,
                    }
                }
            }
            AccessOutcome::Dram { hops, streamed } => {
                if streamed {
                    self.cfg.dram_streamed
                } else {
                    match hops {
                        0 => self.cfg.dram_local,
                        1 => self.cfg.dram_one_hop,
                        _ => self.cfg.dram_two_hops,
                    }
                }
            }
        }
    }

    /// Cost of invalidating `copies` remote copies of a line on a write.
    pub fn invalidation_cost(&self, copies: u64) -> u64 {
        self.cfg.invalidate_per_copy * copies
    }

    /// The cheapest possible DRAM access (used by policies to reason about
    /// whether migration is worthwhile without peeking at placement).
    pub fn min_dram_cost(&self) -> u64 {
        self.cfg.dram_streamed.min(self.cfg.dram_local)
    }

    /// The most expensive DRAM access in this model.
    pub fn max_dram_cost(&self) -> u64 {
        self.cfg.dram_two_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::new(LatencyConfig::default())
    }

    #[test]
    fn paper_latencies_are_reproduced() {
        let m = model();
        assert_eq!(m.cost(AccessOutcome::L1Hit), 3);
        assert_eq!(m.cost(AccessOutcome::L2Hit), 14);
        assert_eq!(m.cost(AccessOutcome::L3Hit), 75);
        assert_eq!(
            m.cost(AccessOutcome::RemoteCache {
                hops: 0,
                streamed: false
            }),
            127
        );
        assert_eq!(
            m.cost(AccessOutcome::Dram {
                hops: 2,
                streamed: false
            }),
            336
        );
    }

    #[test]
    fn latency_ordering_matches_hierarchy() {
        let m = model();
        let l1 = m.cost(AccessOutcome::L1Hit);
        let l2 = m.cost(AccessOutcome::L2Hit);
        let l3 = m.cost(AccessOutcome::L3Hit);
        let rc = m.cost(AccessOutcome::RemoteCache {
            hops: 0,
            streamed: false,
        });
        let dram = m.cost(AccessOutcome::Dram {
            hops: 0,
            streamed: false,
        });
        assert!(l1 < l2 && l2 < l3 && l3 < rc && rc < dram);
    }

    #[test]
    fn streamed_accesses_are_cheaper() {
        let m = model();
        let cold = m.cost(AccessOutcome::Dram {
            hops: 2,
            streamed: false,
        });
        let warm = m.cost(AccessOutcome::Dram {
            hops: 2,
            streamed: true,
        });
        assert!(warm < cold);
        let cold_rc = m.cost(AccessOutcome::RemoteCache {
            hops: 1,
            streamed: false,
        });
        let warm_rc = m.cost(AccessOutcome::RemoteCache {
            hops: 1,
            streamed: true,
        });
        assert!(warm_rc < cold_rc);
    }

    #[test]
    fn hop_count_increases_cost() {
        let m = model();
        let d0 = m.cost(AccessOutcome::Dram {
            hops: 0,
            streamed: false,
        });
        let d1 = m.cost(AccessOutcome::Dram {
            hops: 1,
            streamed: false,
        });
        let d2 = m.cost(AccessOutcome::Dram {
            hops: 2,
            streamed: false,
        });
        assert!(d0 < d1 && d1 < d2);
    }

    #[test]
    fn outcome_classification_helpers() {
        assert!(!AccessOutcome::L1Hit.is_private_miss());
        assert!(!AccessOutcome::L2Hit.is_private_miss());
        assert!(AccessOutcome::L3Hit.is_private_miss());
        assert!(!AccessOutcome::L3Hit.is_off_chip());
        assert!(AccessOutcome::Dram {
            hops: 0,
            streamed: false
        }
        .is_dram());
        assert!(AccessOutcome::RemoteCache {
            hops: 1,
            streamed: false
        }
        .is_off_chip());
        assert!(!AccessOutcome::RemoteCache {
            hops: 0,
            streamed: false
        }
        .is_off_chip());
    }

    #[test]
    fn invalidation_cost_scales_with_copies() {
        let m = model();
        assert_eq!(m.invalidation_cost(0), 0);
        assert_eq!(m.invalidation_cost(3), 60);
    }

    #[test]
    fn min_max_dram_bounds() {
        let m = model();
        assert!(m.min_dram_cost() <= m.max_dram_cost());
        assert_eq!(m.max_dram_cost(), 336);
    }
}
