//! The machine model: per-core private caches, per-chip victim L3s, a
//! coherence directory, the interconnect, DRAM homes and event counters.
//!
//! [`Machine::access`] is the single entry point used by the runtime: it
//! resolves where each touched line currently lives, charges the
//! corresponding latency, moves lines between caches the way the AMD
//! memory system of the paper would, and updates the per-core event
//! counters that CoreTime's monitoring reads.
//!
//! ## The fast path
//!
//! Nearly every simulated access hits the requesting core's L1, so that
//! case is a straight line: one probe of the flat L1 slab, one counter
//! bump, done — no directory, no interconnect, no outcome dispatch. Writes
//! take the same shortcut when the L1 way carries the *exclusivity hint*
//! (this core is known to be the line's only holder, MESI's E/M states):
//! a write to an exclusive line cannot need invalidations, so the
//! coherence directory is never consulted. The hint is set when a write
//! completes (the writer is sole holder by construction) or a DRAM fill
//! installs a line nobody else held, and cleared whenever another core
//! obtains a copy. Correctness never depends on the hint: a cleared hint
//! only sends the access down the slow path, and
//! `tests/memory_model.rs` pins the whole model bit-for-bit against the
//! pre-refactor implementation.

use crate::cache::{Cache, LineAddr, Probe};
use crate::config::MachineConfig;
use crate::counters::{CoreCounters, MachineCounters, MemStats};
use crate::directory::{FlatDirectory, LineHolders};
use crate::interconnect::{Interconnect, InterconnectStats, MessageKind};
use crate::latency::{AccessOutcome, LatencyModel};
use crate::memory::{Addr, SimMemory};

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (invalidates other copies).
    Write,
}

/// Per-core state used to detect sequential streams (models hardware
/// prefetching / memory-level parallelism for DRAM and remote transfers).
#[derive(Debug, Clone, Copy, Default)]
struct StreamState {
    last_line: Option<LineAddr>,
    /// True when the previous line also came from DRAM or a remote cache.
    last_was_far: bool,
}

/// The simulated multicore machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    lat: LatencyModel,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    directory: FlatDirectory,
    interconnect: Interconnect,
    memory: SimMemory,
    counters: Vec<CoreCounters>,
    streams: Vec<StreamState>,
    /// Virtual-time hint used only for interconnect contention accounting.
    now_hint: u64,
    /// Accesses resolved entirely by the L1 fast path.
    l1_short_circuits: u64,
    /// Lines evicted from any cache (L1 drops, L2 spills, L3 victims).
    evictions: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`] or has
    /// more than 64 cores or chips (the coherence directory uses bitmasks).
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        assert!(cfg.total_cores() <= 64, "at most 64 cores are supported");
        assert!(cfg.chips <= 64, "at most 64 chips are supported");
        let cores = cfg.total_cores() as usize;
        let chips = cfg.chips as usize;
        let l1 = (0..cores)
            .map(|_| Cache::new(cfg.l1, cfg.line_size))
            .collect();
        let l2 = (0..cores)
            .map(|_| Cache::new(cfg.l2, cfg.line_size))
            .collect();
        let l3 = (0..chips)
            .map(|_| Cache::new(cfg.l3, cfg.line_size))
            .collect();
        let interconnect = Interconnect::new(cfg.chips, cfg.contention);
        let memory = SimMemory::new(cfg.chips, cfg.line_size);
        Self {
            lat: LatencyModel::new(cfg.latency),
            l1,
            l2,
            l3,
            directory: FlatDirectory::default(),
            interconnect,
            memory,
            counters: vec![CoreCounters::default(); cores],
            streams: vec![StreamState::default(); cores],
            cfg,
            now_hint: 0,
            l1_short_circuits: 0,
            evictions: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.lat
    }

    /// Mutable access to the simulated memory allocator.
    pub fn memory_mut(&mut self) -> &mut SimMemory {
        &mut self.memory
    }

    /// Read-only access to the simulated memory allocator.
    pub fn memory(&self) -> &SimMemory {
        &self.memory
    }

    /// Interconnect statistics so far.
    pub fn interconnect_stats(&self) -> InterconnectStats {
        self.interconnect.stats()
    }

    /// Memory-system totals: directory pressure, fast-path hits, evictions.
    pub fn mem_stats(&self) -> MemStats {
        MemStats {
            directory_probes: self.directory.probes(),
            directory_entries: self.directory.len() as u64,
            directory_capacity: self.directory.capacity() as u64,
            l1_short_circuits: self.l1_short_circuits,
            evictions: self.evictions,
        }
    }

    /// Event counters of one core.
    pub fn counters(&self, core: u32) -> &CoreCounters {
        &self.counters[core as usize]
    }

    /// Mutable event counters of one core (the runtime uses this to account
    /// compute cycles, idle cycles, migrations and completed operations).
    pub fn counters_mut(&mut self, core: u32) -> &mut CoreCounters {
        &mut self.counters[core as usize]
    }

    /// Snapshot of every core's counters.
    pub fn snapshot_counters(&self) -> MachineCounters {
        MachineCounters {
            cores: self.counters.clone(),
        }
    }

    /// Resets all event counters and interconnect statistics (cache contents
    /// are preserved, so a measurement window can follow a warm-up window).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            c.reset();
        }
        self.interconnect.reset_stats();
    }

    /// Updates the virtual-time hint used for interconnect contention
    /// accounting. The runtime calls this with the acting core's clock.
    pub fn set_time_hint(&mut self, now: u64) {
        self.now_hint = now;
    }

    /// The line address containing a byte address.
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        addr / self.cfg.line_size
    }

    /// Performs a memory access of `len` bytes starting at `addr` on behalf
    /// of `core`, returning the total cost in cycles. The cost is also added
    /// to the core's `busy_cycles` counter.
    pub fn access(&mut self, core: u32, addr: Addr, len: u64, kind: AccessKind) -> u64 {
        let len = len.max(1);
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        // Per-access setup, hoisted out of the per-line loop: the chip
        // lookup, the L1 hit cost, and a local accumulator for the hit
        // counters so the fast loop touches no per-core state but the
        // stream slot.
        let chip = self.cfg.chip_of(core);
        let c = core as usize;
        let l1_hit_cost = self.lat.config().l1_hit;
        let mut total = 0;
        let mut fast_hits = 0u64;
        // Fast hits only need the *final* stream state written back; a run
        // of hits is collapsed into one store, flushed before any slow-path
        // line (whose stream detection reads the state of its predecessor).
        let mut pending_stream: Option<LineAddr> = None;
        for line in first..=last {
            if kind == AccessKind::Read {
                if self.l1[c].probe_and_touch(line) == Probe::Hit {
                    pending_stream = Some(line);
                    fast_hits += 1;
                    total += l1_hit_cost;
                } else {
                    if let Some(prev) = pending_stream.take() {
                        self.streams[c] = StreamState {
                            last_line: Some(prev),
                            last_was_far: false,
                        };
                    }
                    // The L1 probe above already missed — enter the slow
                    // path directly rather than re-scanning the set.
                    let (cost, _) = self.access_line_slow(core, chip, line, kind);
                    total += cost;
                }
            } else {
                let (cost, _) = self.access_line_at(core, chip, line, kind);
                total += cost;
            }
        }
        if let Some(prev) = pending_stream {
            self.streams[c] = StreamState {
                last_line: Some(prev),
                last_was_far: false,
            };
        }
        if fast_hits > 0 {
            let ctr = &mut self.counters[c];
            ctr.l1_hits += fast_hits;
            ctr.busy_cycles += fast_hits * l1_hit_cost;
            self.l1_short_circuits += fast_hits;
        }
        total
    }

    /// Performs a single-line access and returns its cost and outcome.
    pub fn access_line(
        &mut self,
        core: u32,
        line: LineAddr,
        kind: AccessKind,
    ) -> (u64, AccessOutcome) {
        let chip = self.cfg.chip_of(core);
        self.access_line_at(core, chip, line, kind)
    }

    /// `access_line` with the core→chip lookup hoisted out (the multi-line
    /// `access` loop computes it once).
    fn access_line_at(
        &mut self,
        core: u32,
        chip: u32,
        line: LineAddr,
        kind: AccessKind,
    ) -> (u64, AccessOutcome) {
        let c = core as usize;

        // ---- L1-hit short-circuit --------------------------------------
        // A read hitting the local L1 touches nothing but the L1 and the
        // core's own counters; a write additionally requires the
        // exclusivity hint (sole holder ⇒ no invalidations possible), and
        // must mirror the dirty bit into the inclusive L2.
        match kind {
            AccessKind::Read => {
                if self.l1[c].probe_and_touch(line) == Probe::Hit {
                    return self.finish_l1_fast_path(c, line);
                }
            }
            AccessKind::Write => {
                if let Some(excl) = self.l1[c].touch_write(line) {
                    if excl {
                        // `peek` rather than `get`: the diagnostic must not
                        // skew the probe counter debug-vs-release.
                        debug_assert!(
                            self.directory
                                .peek(line)
                                .unwrap_or_default()
                                .sole_holder(core, chip),
                            "stale exclusivity hint on line {line:#x}"
                        );
                        self.l2[c].mark_dirty(line);
                        return self.finish_l1_fast_path(c, line);
                    }
                    // Resident but possibly shared: the write continues on
                    // the slow path below (directory consultation), with
                    // the probe/touch/dirty work already done.
                    let cost = self.finish_write_hit(core, chip, c, line);
                    return (cost, AccessOutcome::L1Hit);
                }
            }
        }

        self.access_line_slow(core, chip, line, kind)
    }

    /// The miss path: the caller has already probed the requesting core's
    /// L1 (and, for writes, set the dirty bit on a hit) — the line is NOT
    /// in its L1.
    fn access_line_slow(
        &mut self,
        core: u32,
        chip: u32,
        line: LineAddr,
        kind: AccessKind,
    ) -> (u64, AccessOutcome) {
        let c = core as usize;
        let streamed_hint = self.is_streamed(core, line);
        let outcome = self.locate_and_fill(core, chip, line);
        let mut cost = self.lat.cost(outcome);
        // Sequential scans that spill past the private caches are largely
        // hidden by the prefetcher, including when they hit in the L3.
        if outcome == AccessOutcome::L3Hit && streamed_hint {
            cost = cost.min(self.lat.config().l3_streamed);
        }

        // Record hit/miss counters.
        {
            let ctr = &mut self.counters[c];
            match outcome {
                AccessOutcome::L1Hit => ctr.l1_hits += 1,
                AccessOutcome::L2Hit => {
                    ctr.l1_misses += 1;
                    ctr.l2_hits += 1;
                }
                AccessOutcome::L3Hit => {
                    ctr.l1_misses += 1;
                    ctr.l2_misses += 1;
                    ctr.l3_hits += 1;
                }
                AccessOutcome::RemoteCache { .. } => {
                    ctr.l1_misses += 1;
                    ctr.l2_misses += 1;
                    ctr.l3_misses += 1;
                    ctr.remote_cache_loads += 1;
                }
                AccessOutcome::Dram { .. } => {
                    ctr.l1_misses += 1;
                    ctr.l2_misses += 1;
                    ctr.l3_misses += 1;
                    ctr.dram_loads += 1;
                }
            }
        }

        // Interconnect accounting for off-chip traffic.
        match outcome {
            AccessOutcome::RemoteCache { hops, .. } if hops > 0 => {
                let to = self.remote_chip_hint(chip, hops);
                let penalty = self.interconnect.send(
                    MessageKind::LineTransfer,
                    chip,
                    to,
                    self.now_hint,
                    cost,
                );
                cost += penalty;
                self.counters[c].interconnect_messages += 1;
            }
            AccessOutcome::Dram { hops, .. } if hops > 0 => {
                let to = self.remote_chip_hint(chip, hops);
                let penalty =
                    self.interconnect
                        .send(MessageKind::DramFill, chip, to, self.now_hint, cost);
                cost += penalty;
                self.counters[c].interconnect_messages += 1;
            }
            _ => {}
        }

        // Writes invalidate every other copy.
        if kind == AccessKind::Write {
            cost += self.invalidate_other_copies(core, chip, line);
            self.l1[c].mark_dirty(line);
            self.l2[c].mark_dirty(line);
            // The writer is the sole holder now.
            self.l1[c].set_excl(line);
        }

        // Update the stream detector: anything that left the private caches
        // continues (or starts) a prefetchable stream.
        let far = outcome.is_private_miss();
        self.streams[c] = StreamState {
            last_line: Some(line),
            last_was_far: far,
        };

        self.counters[c].busy_cycles += cost;
        (cost, outcome)
    }

    /// Shared tail of the L1 fast path: counters, stream state, bookkeeping.
    #[inline]
    fn finish_l1_fast_path(&mut self, c: usize, line: LineAddr) -> (u64, AccessOutcome) {
        let cost = self.lat.config().l1_hit;
        let ctr = &mut self.counters[c];
        ctr.l1_hits += 1;
        ctr.busy_cycles += cost;
        self.streams[c] = StreamState {
            last_line: Some(line),
            last_was_far: false,
        };
        self.l1_short_circuits += 1;
        (cost, AccessOutcome::L1Hit)
    }

    /// Slow tail of a write that hit the L1 without the exclusivity hint:
    /// consult the directory, invalidate remote copies, become exclusive.
    fn finish_write_hit(&mut self, core: u32, chip: u32, c: usize, line: LineAddr) -> u64 {
        let mut cost = self.lat.config().l1_hit;
        cost += self.invalidate_other_copies(core, chip, line);
        self.l2[c].mark_dirty(line);
        self.l1[c].set_excl(line);
        self.streams[c] = StreamState {
            last_line: Some(line),
            last_was_far: false,
        };
        let ctr = &mut self.counters[c];
        ctr.l1_hits += 1;
        ctr.busy_cycles += cost;
        cost
    }

    /// Warms caches by performing reads on behalf of `core` without
    /// counting them (useful for tests and for constructing Figure-2 style
    /// snapshots from a known state).
    pub fn prefill(&mut self, core: u32, addr: Addr, len: u64) {
        let before = self.counters[core as usize];
        let stream = self.streams[core as usize];
        self.access(core, addr, len, AccessKind::Read);
        self.counters[core as usize] = before;
        self.streams[core as usize] = stream;
    }

    /// Whether a line is resident in a core's private caches.
    pub fn in_private_cache(&self, core: u32, line: LineAddr) -> bool {
        self.l1[core as usize].contains(line) || self.l2[core as usize].contains(line)
    }

    /// Whether a line is resident in a chip's L3.
    pub fn in_l3(&self, chip: u32, line: LineAddr) -> bool {
        self.l3[chip as usize].contains(line)
    }

    /// Lines resident in a core's L1.
    pub fn l1_lines(&self, core: u32) -> Vec<LineAddr> {
        self.l1[core as usize].lines().collect()
    }

    /// Lines resident in a core's L2.
    pub fn l2_lines(&self, core: u32) -> Vec<LineAddr> {
        self.l2[core as usize].lines().collect()
    }

    /// Lines resident in a chip's L3.
    pub fn l3_lines(&self, chip: u32) -> Vec<LineAddr> {
        self.l3[chip as usize].lines().collect()
    }

    /// Occupancy (0.0–1.0) of a core's L2.
    pub fn l2_occupancy(&self, core: u32) -> f64 {
        self.l2[core as usize].occupancy()
    }

    /// Occupancy (0.0–1.0) of a chip's L3.
    pub fn l3_occupancy(&self, chip: u32) -> f64 {
        self.l3[chip as usize].occupancy()
    }

    /// Flushes every cache (counters are preserved).
    pub fn flush_all_caches(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        for c in &mut self.l3 {
            c.flush();
        }
        self.directory.clear();
        for s in &mut self.streams {
            *s = StreamState::default();
        }
    }

    /// Hop distance between the chips of two cores.
    pub fn hops_between_cores(&self, a: u32, b: u32) -> u32 {
        self.interconnect
            .hops(self.cfg.chip_of(a), self.cfg.chip_of(b))
    }

    /// Records a thread-migration transfer on the interconnect and returns
    /// the wire cost (zero for same-chip migrations beyond the fixed costs
    /// charged by the runtime).
    pub fn migration_transfer(&mut self, from_core: u32, to_core: u32) -> u64 {
        let from_chip = self.cfg.chip_of(from_core);
        let to_chip = self.cfg.chip_of(to_core);
        let hops = self.interconnect.hops(from_chip, to_chip);
        let base = u64::from(hops) * self.lat.config().remote_cache_one_hop / 2;
        let penalty = self.interconnect.send(
            MessageKind::Migration,
            from_chip,
            to_chip,
            self.now_hint,
            base.max(1),
        );
        base + penalty
    }

    /// Like [`Machine::migration_transfer`], but over a possibly degraded
    /// interconnect: returns `None` when the context message is lost in
    /// transit (the sender must retry), `Some(wire_cost)` otherwise. On a
    /// healthy link this is exactly `migration_transfer` — no draws.
    pub fn try_migration_transfer(&mut self, from_core: u32, to_core: u32) -> Option<u64> {
        if self.interconnect.lose_migration() {
            // The lost message still occupied the wire: account it.
            let from_chip = self.cfg.chip_of(from_core);
            let to_chip = self.cfg.chip_of(to_core);
            let hops = self.interconnect.hops(from_chip, to_chip);
            let base = u64::from(hops) * self.lat.config().remote_cache_one_hop / 2;
            self.interconnect.send(
                MessageKind::Migration,
                from_chip,
                to_chip,
                self.now_hint,
                base.max(1),
            );
            return None;
        }
        Some(self.migration_transfer(from_core, to_core))
    }

    /// Installs (or clears) fault-injected interconnect degradation; the
    /// seed feeds the deterministic migration-loss draws.
    pub fn set_interconnect_degradation(
        &mut self,
        degradation: Option<crate::fault::LinkDegradation>,
        seed: u64,
    ) {
        self.interconnect.set_degradation(degradation, seed);
    }

    // ---- internal helpers -------------------------------------------------

    /// Picks an arbitrary chip at the given hop distance (used only to
    /// attribute interconnect traffic; latency already reflects the hops).
    fn remote_chip_hint(&self, from_chip: u32, hops: u32) -> u32 {
        if hops == 0 {
            return from_chip;
        }
        for chip in 0..self.cfg.chips {
            if self.interconnect.hops(from_chip, chip) == hops {
                return chip;
            }
        }
        (from_chip + 1) % self.cfg.chips
    }

    /// Clears the exclusivity hint of every core in `cores_mask`: they are
    /// about to share the line with the requester.
    fn clear_excl_holders(&mut self, cores_mask: u64, line: LineAddr) {
        let mut bits = cores_mask;
        while bits != 0 {
            let other = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.l1[other].clear_excl(line);
        }
    }

    /// Finds where a line lives, moves it into the requesting core's private
    /// caches, and returns the access outcome. Precondition: the line is not
    /// in the requesting core's L1 (every caller has already probed it), so
    /// the search starts at the L2.
    fn locate_and_fill(&mut self, core: u32, chip: u32, line: LineAddr) -> AccessOutcome {
        let c = core as usize;

        if self.l2[c].probe_and_touch(line) == Probe::Hit {
            // Refill L1 (inclusive in L2): L1 victims are simply dropped.
            if self.l1[c].insert(line, false).is_some() {
                self.evictions += 1;
            }
            return AccessOutcome::L2Hit;
        }

        // The chip-local L3 is a victim cache: on a hit the line moves into
        // the requester's private caches and leaves the L3.
        if self.l3[chip as usize].probe_and_touch(line) == Probe::Hit {
            let dirty = self.l3[chip as usize].invalidate(line).unwrap_or(false);
            let holders = self.directory.entry(line);
            holders.chips &= !(1u64 << chip);
            let h = *holders;
            // Same-chip peers lose exclusivity; if nobody else holds the
            // line the requester gains it.
            self.clear_excl_holders(h.cores, line);
            self.fill_private(core, chip, line, dirty);
            if h.cores == 0 && h.chips & !(1u64 << chip) == 0 {
                self.l1[c].set_excl(line);
            }
            return AccessOutcome::L3Hit;
        }

        // Not on this chip: consult the directory for remote copies.
        let holders = self.directory.get(line).unwrap_or_default();
        let remote = self.nearest_remote_holder(core, chip, holders);
        let streamed = self.is_streamed(core, line);
        let outcome = match remote {
            Some(holder_chip) => AccessOutcome::RemoteCache {
                hops: self.interconnect.hops(chip, holder_chip),
                streamed,
            },
            None => AccessOutcome::Dram {
                hops: self
                    .interconnect
                    .hops(chip, self.memory.home_chip_of_line(line)),
                streamed,
            },
        };
        // The data (a read copy) is installed in the requester's caches; any
        // remote copies stay where they are for reads — but their holders
        // are no longer exclusive.
        self.clear_excl_holders(holders.cores, line);
        self.fill_private(core, chip, line, false);
        if holders.is_empty() {
            // Fresh DRAM fill nobody else holds: the requester starts
            // exclusive, so a following write skips the directory.
            self.l1[c].set_excl(line);
        }
        outcome
    }

    /// Whether the access to `line` continues a sequential far stream.
    fn is_streamed(&self, core: u32, line: LineAddr) -> bool {
        let s = &self.streams[core as usize];
        s.last_was_far && s.last_line == Some(line.wrapping_sub(1))
    }

    /// Finds the chip of the closest cache (private or L3) holding the line,
    /// excluding the requesting core's own private caches.
    fn nearest_remote_holder(&self, core: u32, chip: u32, holders: LineHolders) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (hops, chip)
        let mut cores = holders.cores & !(1u64 << core);
        while cores != 0 {
            let other = cores.trailing_zeros();
            cores &= cores - 1;
            let oc = self.cfg.chip_of(other);
            let hops = self.interconnect.hops(chip, oc);
            if best.map_or(true, |(h, _)| hops < h) {
                best = Some((hops, oc));
            }
        }
        let mut chips = holders.chips & !(1u64 << chip);
        while chips != 0 {
            let other_chip = chips.trailing_zeros();
            chips &= chips - 1;
            let hops = self.interconnect.hops(chip, other_chip);
            if best.map_or(true, |(h, _)| hops < h) {
                best = Some((hops, other_chip));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Installs a line into a core's L1 and L2, spilling L2 victims into the
    /// chip's L3 (victim cache) and keeping the directory in sync.
    fn fill_private(&mut self, core: u32, chip: u32, line: LineAddr, dirty: bool) {
        let c = core as usize;
        if let Some(victim) = self.l2[c].insert(line, dirty) {
            self.evictions += 1;
            // Maintain L1 inclusivity in L2.
            self.l1[c].invalidate(victim.line);
            if let Some(h) = self.directory.get_mut(victim.line) {
                h.cores &= !(1u64 << core);
            }
            // Spill the victim into the chip's L3 unless some cache already
            // holds it there.
            if let Some(l3_victim) = self.l3[chip as usize].insert(victim.line, victim.dirty) {
                self.evictions += 1;
                if let Some(h) = self.directory.get_mut(l3_victim.line) {
                    h.chips &= !(1u64 << chip);
                    if h.is_empty() {
                        self.directory.remove(l3_victim.line);
                    }
                }
            }
            self.directory.entry(victim.line).chips |= 1u64 << chip;
        }
        if self.l1[c].insert(line, dirty).is_some() {
            self.evictions += 1;
        }
        self.directory.entry(line).cores |= 1u64 << core;
    }

    /// Invalidates every copy of `line` outside `core`'s private caches and
    /// returns the extra cycles charged to the writer.
    fn invalidate_other_copies(&mut self, core: u32, chip: u32, line: LineAddr) -> u64 {
        let holders = match self.directory.get(line) {
            Some(h) => h,
            None => return 0,
        };
        // Sole holder (modulo a victim copy in the writer's own L3): the
        // loops below would find nothing — skip them without touching the
        // other cores' caches at all.
        if holders.sole_holder(core, chip) {
            return 0;
        }
        let mut invalidated = 0u64;
        let mut cores = holders.cores & !(1u64 << core);
        while cores != 0 {
            let o = cores.trailing_zeros() as usize;
            cores &= cores - 1;
            self.l1[o].invalidate(line);
            self.l2[o].invalidate(line);
            self.counters[o].invalidations_received += 1;
            invalidated += 1;
        }
        let mut chips = holders.chips & !(1u64 << chip);
        while chips != 0 {
            let oc = chips.trailing_zeros() as usize;
            chips &= chips - 1;
            self.l3[oc].invalidate(line);
            invalidated += 1;
        }
        if invalidated > 0 {
            let h = self.directory.entry(line);
            h.cores = 1u64 << core;
            h.chips &= 1u64 << chip;
            self.counters[core as usize].invalidations_sent += invalidated;
            // One broadcast locates and invalidates all copies.
            let penalty = self.interconnect.send(
                MessageKind::CoherenceBroadcast,
                chip,
                (chip + 1) % self.cfg.chips.max(1),
                self.now_hint,
                self.lat.invalidation_cost(invalidated),
            );
            self.counters[core as usize].interconnect_messages += 1;
            self.lat.invalidation_cost(invalidated) + penalty
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        let mut cfg = MachineConfig::amd16();
        cfg.contention = crate::config::ContentionModel::None;
        Machine::new(cfg)
    }

    #[test]
    fn first_access_misses_to_dram_then_hits_in_l1() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let (cost1, out1) = m.access_line(0, m.line_of(r.addr), AccessKind::Read);
        assert!(out1.is_dram());
        assert!(cost1 >= 120);
        let (cost2, out2) = m.access_line(0, m.line_of(r.addr), AccessKind::Read);
        assert_eq!(out2, AccessOutcome::L1Hit);
        assert_eq!(cost2, 3);
        assert_eq!(m.counters(0).dram_loads, 1);
        assert_eq!(m.counters(0).l1_hits, 1);
    }

    #[test]
    fn remote_cache_fetch_is_cheaper_than_dram_but_more_than_l3() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let line = m.line_of(r.addr);
        // Core 0 (chip 0) loads the line from DRAM.
        m.access_line(0, line, AccessKind::Read);
        // Core 4 (chip 1) should now find it in core 0's cache.
        let (cost, out) = m.access_line(4, line, AccessKind::Read);
        match out {
            AccessOutcome::RemoteCache { hops, .. } => assert!(hops >= 1),
            other => panic!("expected remote cache hit, got {other:?}"),
        }
        assert!(cost > 75 && cost <= 336);
        assert_eq!(m.counters(4).remote_cache_loads, 1);
    }

    #[test]
    fn same_chip_sibling_hit_costs_127() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let line = m.line_of(r.addr);
        m.access_line(0, line, AccessKind::Read);
        // Core 1 is on the same chip as core 0.
        let (cost, out) = m.access_line(1, line, AccessKind::Read);
        assert_eq!(
            out,
            AccessOutcome::RemoteCache {
                hops: 0,
                streamed: false
            }
        );
        assert_eq!(cost, 127);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let line = m.line_of(r.addr);
        m.access_line(0, line, AccessKind::Read);
        m.access_line(1, line, AccessKind::Read);
        assert!(m.in_private_cache(0, line));
        assert!(m.in_private_cache(1, line));
        // Core 1 writes: core 0's copy must disappear.
        m.access_line(1, line, AccessKind::Write);
        assert!(!m.in_private_cache(0, line));
        assert!(m.in_private_cache(1, line));
        assert!(m.counters(1).invalidations_sent >= 1);
        assert!(m.counters(0).invalidations_received >= 1);
        // Core 0 reads again: it must fetch the line remotely, not hit.
        let (_, out) = m.access_line(0, line, AccessKind::Read);
        assert!(out.is_private_miss());
    }

    #[test]
    fn l2_victims_spill_into_l3_and_hit_there() {
        let mut cfg = MachineConfig::amd16();
        cfg.contention = crate::config::ContentionModel::None;
        // Shrink the private caches so eviction happens quickly.
        cfg.l1 = crate::config::CacheGeometry::new(2 * 64, 1);
        cfg.l2 = crate::config::CacheGeometry::new(4 * 64, 1);
        cfg.l3 = crate::config::CacheGeometry::new(64 * 64, 16);
        let mut m = Machine::new(cfg);
        let r = m.memory_mut().alloc(64 * 64, 0);
        // Touch 32 distinct lines: far more than L2 holds.
        for i in 0..32 {
            m.access_line(0, m.line_of(r.addr) + i, AccessKind::Read);
        }
        // Re-touch the first line: it should have been evicted from L2 into
        // the chip's L3 (victim cache) and hit there.
        let (cost, out) = m.access_line(0, m.line_of(r.addr), AccessKind::Read);
        assert_eq!(out, AccessOutcome::L3Hit);
        assert_eq!(cost, 75);
        assert_eq!(m.counters(0).l3_hits, 1);
    }

    #[test]
    fn streaming_dram_reads_get_the_prefetch_discount() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64 * 100, 0);
        let first = m.line_of(r.addr);
        let (c0, o0) = m.access_line(0, first, AccessKind::Read);
        assert!(o0.is_dram());
        let (c1, o1) = m.access_line(0, first + 1, AccessKind::Read);
        match o1 {
            AccessOutcome::Dram { streamed, .. } => assert!(streamed),
            other => panic!("expected DRAM, got {other:?}"),
        }
        assert!(c1 < c0, "streamed access must be cheaper ({c1} !< {c0})");
    }

    #[test]
    fn multi_line_access_charges_each_line() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64 * 8, 0);
        let cost = m.access(0, r.addr, 8 * 64, AccessKind::Read);
        // 8 lines: first is a cold DRAM miss, the rest are streamed.
        assert!(cost >= 230 + 7 * 120);
        assert_eq!(m.counters(0).dram_loads, 8);
        // A second pass hits in L1.
        let cost2 = m.access(0, r.addr, 8 * 64, AccessKind::Read);
        assert_eq!(cost2, 8 * 3);
    }

    #[test]
    fn busy_cycles_accumulate_access_costs() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let cost = m.access(3, r.addr, 64, AccessKind::Read);
        assert_eq!(m.counters(3).busy_cycles, cost);
    }

    #[test]
    fn prefill_does_not_change_counters() {
        let mut m = machine();
        let r = m.memory_mut().alloc(4096, 0);
        m.prefill(2, r.addr, 4096);
        assert_eq!(m.counters(2), &CoreCounters::default());
        // But the data is now cached.
        let (_, out) = m.access_line(2, m.line_of(r.addr), AccessKind::Read);
        assert!(!out.is_private_miss());
    }

    #[test]
    fn flush_clears_all_caches() {
        let mut m = machine();
        let r = m.memory_mut().alloc(4096, 0);
        m.access(0, r.addr, 4096, AccessKind::Read);
        m.flush_all_caches();
        let (_, out) = m.access_line(0, m.line_of(r.addr), AccessKind::Read);
        assert!(out.is_dram());
    }

    #[test]
    fn reset_counters_keeps_cache_contents() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        m.access(0, r.addr, 64, AccessKind::Read);
        m.reset_counters();
        assert_eq!(m.counters(0).dram_loads, 0);
        let (_, out) = m.access_line(0, m.line_of(r.addr), AccessKind::Read);
        assert_eq!(out, AccessOutcome::L1Hit);
    }

    #[test]
    fn migration_transfer_is_free_on_chip_and_charged_across_chips() {
        let mut m = machine();
        assert_eq!(m.migration_transfer(0, 1), 0);
        assert!(m.migration_transfer(0, 15) > 0);
        assert!(m.interconnect_stats().migrations >= 2);
    }

    #[test]
    fn hops_between_cores_uses_chip_topology() {
        let m = machine();
        assert_eq!(m.hops_between_cores(0, 3), 0);
        assert_eq!(m.hops_between_cores(0, 4), 1);
        assert_eq!(m.hops_between_cores(0, 12), 2);
    }

    #[test]
    fn snapshot_counters_covers_every_core() {
        let m = machine();
        let snap = m.snapshot_counters();
        assert_eq!(snap.num_cores(), 16);
    }

    #[test]
    fn repeat_writes_to_private_line_take_the_short_circuit() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let line = m.line_of(r.addr);
        // Fill from DRAM (nobody else holds it → exclusive on arrival),
        // then write it repeatedly.
        m.access_line(0, line, AccessKind::Read);
        let before = m.mem_stats().l1_short_circuits;
        for _ in 0..10 {
            let (cost, out) = m.access_line(0, line, AccessKind::Write);
            assert_eq!(out, AccessOutcome::L1Hit);
            assert_eq!(cost, 3);
        }
        assert_eq!(m.mem_stats().l1_short_circuits, before + 10);
        // The dirty bit reached the L2 so a later spill writes back.
        assert_eq!(m.counters(0).invalidations_sent, 0);
    }

    #[test]
    fn shared_line_write_does_not_short_circuit() {
        let mut m = machine();
        let r = m.memory_mut().alloc(64, 0);
        let line = m.line_of(r.addr);
        m.access_line(0, line, AccessKind::Read);
        m.access_line(1, line, AccessKind::Read);
        // Core 0's copy is no longer exclusive: the write must invalidate.
        m.access_line(0, line, AccessKind::Write);
        assert_eq!(m.counters(0).invalidations_sent, 1);
        assert!(!m.in_private_cache(1, line));
        // But the *next* write is exclusive again and short-circuits.
        let before = m.mem_stats().l1_short_circuits;
        m.access_line(0, line, AccessKind::Write);
        assert_eq!(m.mem_stats().l1_short_circuits, before + 1);
        assert_eq!(m.counters(0).invalidations_sent, 1);
    }

    #[test]
    fn mem_stats_track_directory_and_evictions() {
        let mut m = machine();
        let r = m.memory_mut().alloc(4 * 1024 * 1024, 0);
        m.access(0, r.addr, 4 * 1024 * 1024, AccessKind::Read);
        let stats = m.mem_stats();
        assert!(stats.directory_probes > 0);
        assert!(stats.directory_entries > 0);
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(stats.directory_capacity.is_power_of_two());
    }
}
