//! Per-core hardware event counters.
//!
//! CoreTime relies on AMD event counters to detect objects that are
//! expensive to fetch and to detect overloaded cores (Section 4, "Runtime
//! monitoring"). The simulator maintains the equivalent counters for every
//! event it charges cycles for, and exposes them through cheap copyable
//! snapshots so a scheduling policy can compute deltas across an operation
//! or an epoch, exactly as the paper's runtime does with raw counter reads.

/// Event counters for a single core.
///
/// All fields are cumulative since the machine was created (or since the
/// last [`CoreCounters::reset`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Cycles spent executing work (compute + memory stalls).
    pub busy_cycles: u64,
    /// Cycles spent with no runnable thread.
    pub idle_cycles: u64,
    /// Loads/stores that hit in the local L1.
    pub l1_hits: u64,
    /// Loads/stores that missed in the local L1.
    pub l1_misses: u64,
    /// Accesses satisfied by the local L2.
    pub l2_hits: u64,
    /// Accesses that missed in the local L2.
    pub l2_misses: u64,
    /// Accesses satisfied by the chip-local shared L3.
    pub l3_hits: u64,
    /// Accesses that missed in the chip-local L3.
    pub l3_misses: u64,
    /// Accesses satisfied by a cache belonging to another core or chip.
    pub remote_cache_loads: u64,
    /// Accesses satisfied by DRAM.
    pub dram_loads: u64,
    /// Lines invalidated in other caches because this core wrote them.
    pub invalidations_sent: u64,
    /// Lines invalidated in this core's caches by another core's write.
    pub invalidations_received: u64,
    /// Interconnect messages originated by this core (coherence plus data).
    pub interconnect_messages: u64,
    /// Threads migrated onto this core.
    pub migrations_in: u64,
    /// Threads migrated away from this core.
    pub migrations_out: u64,
    /// Operations (annotated regions) completed on this core.
    pub operations_completed: u64,
}

impl CoreCounters {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total cycles (busy plus idle) accounted on this core.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.idle_cycles
    }

    /// Total cache misses visible to software: accesses that left the
    /// core's private caches (the signal CoreTime attributes to objects).
    pub fn private_cache_misses(&self) -> u64 {
        self.l2_misses
    }

    /// Loads that left the chip entirely (remote caches or DRAM).
    pub fn off_chip_loads(&self) -> u64 {
        self.remote_cache_loads + self.dram_loads
    }

    /// Fraction of accounted cycles that were idle; zero when nothing has
    /// been accounted yet.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / total as f64
        }
    }

    /// Computes the per-field difference `self - earlier`, saturating at
    /// zero so that a reset between snapshots never produces garbage.
    pub fn delta_since(&self, earlier: &CoreCounters) -> CounterDelta {
        CounterDelta {
            busy_cycles: self.busy_cycles.saturating_sub(earlier.busy_cycles),
            idle_cycles: self.idle_cycles.saturating_sub(earlier.idle_cycles),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            l3_hits: self.l3_hits.saturating_sub(earlier.l3_hits),
            l3_misses: self.l3_misses.saturating_sub(earlier.l3_misses),
            remote_cache_loads: self
                .remote_cache_loads
                .saturating_sub(earlier.remote_cache_loads),
            dram_loads: self.dram_loads.saturating_sub(earlier.dram_loads),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            operations_completed: self
                .operations_completed
                .saturating_sub(earlier.operations_completed),
        }
    }

    /// Adds another counter set into this one (used for machine-wide
    /// aggregation).
    pub fn accumulate(&mut self, other: &CoreCounters) {
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l3_hits += other.l3_hits;
        self.l3_misses += other.l3_misses;
        self.remote_cache_loads += other.remote_cache_loads;
        self.dram_loads += other.dram_loads;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_received += other.invalidations_received;
        self.interconnect_messages += other.interconnect_messages;
        self.migrations_in += other.migrations_in;
        self.migrations_out += other.migrations_out;
        self.operations_completed += other.operations_completed;
    }
}

/// Difference between two counter snapshots, covering the fields CoreTime's
/// monitoring actually consumes (Section 4): cache misses per operation,
/// idle cycles, DRAM loads and L2 loads per epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterDelta {
    /// Busy cycles elapsed.
    pub busy_cycles: u64,
    /// Idle cycles elapsed.
    pub idle_cycles: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (accesses that left the private caches).
    pub l2_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Loads satisfied by remote caches.
    pub remote_cache_loads: u64,
    /// Loads satisfied by DRAM.
    pub dram_loads: u64,
    /// Operations completed.
    pub operations_completed: u64,
}

impl CounterDelta {
    /// Misses attributed to fetching the object manipulated during the
    /// window: everything that left the private caches.
    pub fn object_fetch_misses(&self) -> u64 {
        self.l2_misses
    }

    /// Loads that had to leave the chip (remote cache or DRAM).
    pub fn off_chip_loads(&self) -> u64 {
        self.remote_cache_loads + self.dram_loads
    }

    /// Fraction of elapsed cycles that were idle.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / total as f64
        }
    }

    /// DRAM loads per thousand busy cycles (a load-pressure metric used by
    /// the rebalancer).
    pub fn dram_load_rate(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.dram_loads as f64 * 1000.0 / self.busy_cycles as f64
        }
    }
}

/// Machine-wide memory-system totals, exposed by `Machine::mem_stats()`
/// the same way scheduler behaviour is exposed by `Engine::sched_stats()`.
///
/// These are *simulator* diagnostics (how hard the host is working per
/// simulated access), not architectural counters: directory probes count
/// slot inspections in the flat coherence directory, and short-circuits
/// count accesses resolved entirely by the L1 fast path without touching
/// the directory or interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Slot inspections performed by the flat coherence directory.
    pub directory_probes: u64,
    /// Lines currently tracked by the directory.
    pub directory_entries: u64,
    /// Allocated directory slots (power of two).
    pub directory_capacity: u64,
    /// Accesses resolved entirely by the L1-hit short-circuit.
    pub l1_short_circuits: u64,
    /// Lines evicted from any cache (L1 drops, L2 spills, L3 victims).
    pub evictions: u64,
}

/// A snapshot of every core's counters, taken at a specific point in
/// virtual time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// One entry per core, indexed by core id.
    pub cores: Vec<CoreCounters>,
}

impl MachineCounters {
    /// Creates an all-zero snapshot for `n` cores.
    pub fn new(n: usize) -> Self {
        Self {
            cores: vec![CoreCounters::default(); n],
        }
    }

    /// Number of cores covered by the snapshot.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Sums every core's counters into a single machine-wide set.
    pub fn aggregate(&self) -> CoreCounters {
        let mut total = CoreCounters::default();
        for c in &self.cores {
            total.accumulate(c);
        }
        total
    }

    /// Per-core deltas relative to an earlier snapshot.
    pub fn delta_since(&self, earlier: &MachineCounters) -> Vec<CounterDelta> {
        self.cores
            .iter()
            .zip(earlier.cores.iter())
            .map(|(now, before)| now.delta_since(before))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreCounters {
        CoreCounters {
            busy_cycles: 1000,
            idle_cycles: 250,
            l1_hits: 90,
            l1_misses: 20,
            l2_hits: 12,
            l2_misses: 8,
            l3_hits: 5,
            l3_misses: 3,
            remote_cache_loads: 1,
            dram_loads: 2,
            invalidations_sent: 4,
            invalidations_received: 6,
            interconnect_messages: 9,
            migrations_in: 1,
            migrations_out: 2,
            operations_completed: 7,
        }
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let before = CoreCounters {
            busy_cycles: 400,
            dram_loads: 1,
            ..Default::default()
        };
        let now = sample();
        let d = now.delta_since(&before);
        assert_eq!(d.busy_cycles, 600);
        assert_eq!(d.dram_loads, 1);
        assert_eq!(d.l2_misses, 8);
        assert_eq!(d.operations_completed, 7);
    }

    #[test]
    fn delta_saturates_rather_than_underflowing() {
        let before = sample();
        let now = CoreCounters::default();
        let d = now.delta_since(&before);
        assert_eq!(d.busy_cycles, 0);
        assert_eq!(d.dram_loads, 0);
    }

    #[test]
    fn idle_fraction_handles_zero_total() {
        let c = CoreCounters::default();
        assert_eq!(c.idle_fraction(), 0.0);
        let c = sample();
        let expect = 250.0 / 1250.0;
        assert!((c.idle_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn aggregate_sums_all_cores() {
        let mut m = MachineCounters::new(3);
        m.cores[0] = sample();
        m.cores[2] = sample();
        let agg = m.aggregate();
        assert_eq!(agg.busy_cycles, 2000);
        assert_eq!(agg.dram_loads, 4);
        assert_eq!(agg.operations_completed, 14);
    }

    #[test]
    fn machine_delta_is_per_core() {
        let mut before = MachineCounters::new(2);
        let mut now = MachineCounters::new(2);
        before.cores[1].dram_loads = 5;
        now.cores[1].dram_loads = 9;
        now.cores[0].busy_cycles = 100;
        let ds = now.delta_since(&before);
        assert_eq!(ds[0].busy_cycles, 100);
        assert_eq!(ds[1].dram_loads, 4);
    }

    #[test]
    fn off_chip_and_fetch_miss_helpers() {
        let d = CounterDelta {
            l2_misses: 10,
            remote_cache_loads: 3,
            dram_loads: 4,
            busy_cycles: 1000,
            ..Default::default()
        };
        assert_eq!(d.object_fetch_misses(), 10);
        assert_eq!(d.off_chip_loads(), 7);
        assert!((d.dram_load_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = sample();
        c.reset();
        assert_eq!(c, CoreCounters::default());
    }
}
