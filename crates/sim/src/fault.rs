//! Declarative, deterministic fault schedules.
//!
//! A [`FaultPlan`] is a seed-derived list of timed hardware misbehaviours
//! — core slowdown over a cycle window, permanent core offlining, and
//! interconnect degradation (extra per-hop latency plus probabilistic
//! loss of migration messages). The plan is pure data: the runtime engine
//! consumes it from its event core, so the same plan and seed always
//! replay the same faults at the same virtual cycles, on any host and at
//! any `--jobs` count.
//!
//! All quantities are integers (percent, per-mille, cycles) so plans stay
//! `Eq`/hashable and comparisons never touch floating point.

/// What a single scheduled fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The core's cycle costs are multiplied by `percent`/100 for
    /// `duration` cycles (`0` = for the rest of the run). `percent` is
    /// clamped to at least 101 by [`FaultPlan::validate`]; 100 would be a
    /// no-op.
    SlowCore {
        /// The affected core.
        core: u32,
        /// Cost multiplier in percent of nominal (400 = 4x slower).
        percent: u32,
        /// Window length in cycles; `0` means permanent.
        duration: u64,
    },
    /// The core goes offline permanently: it never dispatches again and
    /// its threads drain to the next live core.
    OfflineCore {
        /// The core taken down.
        core: u32,
    },
    /// The interconnect degrades for `duration` cycles (`0` = for the
    /// rest of the run): migration messages are lost with probability
    /// `loss_per_mille`/1000 per send, and every message pays
    /// `extra_cycles_per_hop` additional latency per hop.
    DegradeInterconnect {
        /// Migration-message loss probability in per-mille (0..=1000).
        loss_per_mille: u32,
        /// Additional latency charged per hop while degraded.
        extra_cycles_per_hop: u64,
        /// Window length in cycles; `0` means permanent.
        duration: u64,
    },
}

/// One scheduled fault: `kind` takes effect once the virtual-time
/// frontier reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual cycle at which the fault takes effect.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// The steady-state parameters of a degraded interconnect (the expanded
/// form of [`FaultKind::DegradeInterconnect`] the interconnect model
/// consumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDegradation {
    /// Migration-message loss probability in per-mille (0..=1000).
    pub loss_per_mille: u32,
    /// Additional latency charged per hop while degraded.
    pub extra_cycles_per_hop: u64,
}

/// A deterministic schedule of hardware faults.
///
/// The default plan is empty and the engine treats it as "no fault plane
/// at all": no gates fire, no random draws happen, and runs are
/// bit-identical to a build without the subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the loss draws of a degraded interconnect. Unused (and
    /// never drawn from) unless a [`FaultKind::DegradeInterconnect`]
    /// window is active.
    pub seed: u64,
    /// The scheduled events, in any order; consumers sort by `at`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, behavior-invisible.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a permanent core offlining at cycle `at`.
    pub fn offline_core(mut self, at: u64, core: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::OfflineCore { core },
        });
        self
    }

    /// Adds a core slowdown window: `percent` of nominal cost (400 = 4x)
    /// for `duration` cycles starting at `at` (`duration` 0 = permanent).
    pub fn slow_core(mut self, at: u64, core: u32, percent: u32, duration: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::SlowCore {
                core,
                percent,
                duration,
            },
        });
        self
    }

    /// Adds an interconnect degradation window starting at `at`.
    pub fn degrade_interconnect(
        mut self,
        at: u64,
        loss_per_mille: u32,
        extra_cycles_per_hop: u64,
        duration: u64,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DegradeInterconnect {
                loss_per_mille,
                extra_cycles_per_hop,
                duration,
            },
        });
        self
    }

    /// Sets the loss-draw seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A seed-derived "fault storm": one core slowdown window, one lossy
    /// interconnect window, and one permanent core offlining, spaced
    /// `spacing` cycles apart starting at `start`. Which cores are hit
    /// and how hard is a pure function of `seed`, so the same seed
    /// always reproduces the same storm.
    pub fn seeded_storm(seed: u64, total_cores: u32, start: u64, spacing: u64) -> Self {
        assert!(total_cores >= 2, "a storm needs at least two cores");
        let draw = |n: u64| splitmix64(seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let slow_core = (draw(1) % u64::from(total_cores)) as u32;
        let slow_percent = 200 + (draw(2) % 4) as u32 * 100; // 2x..5x
        let loss = 100 + (draw(3) % 400) as u32; // 10%..50% per-mille scaled
        let extra = 50 + draw(4) % 200;
        // Offline a different core than the slowed one so both faults bite.
        let dead_core = {
            let c = (draw(5) % u64::from(total_cores)) as u32;
            if c == slow_core {
                (c + 1) % total_cores
            } else {
                c
            }
        };
        FaultPlan::empty()
            .with_seed(seed)
            .slow_core(start, slow_core, slow_percent, spacing * 2)
            .degrade_interconnect(start + spacing, loss, extra, spacing * 2)
            .offline_core(start + 2 * spacing, dead_core)
    }

    /// Checks the plan against a machine with `total_cores` cores.
    /// Returns a description of the first problem found.
    pub fn validate(&self, total_cores: u32) -> Result<(), String> {
        for ev in &self.events {
            match ev.kind {
                FaultKind::SlowCore { core, percent, .. } => {
                    if core >= total_cores {
                        return Err(format!("SlowCore targets core {core} of {total_cores}"));
                    }
                    if percent <= 100 {
                        return Err(format!(
                            "SlowCore percent {percent} must exceed 100 (a speed-up is not a fault)"
                        ));
                    }
                }
                FaultKind::OfflineCore { core } => {
                    if core >= total_cores {
                        return Err(format!("OfflineCore targets core {core} of {total_cores}"));
                    }
                }
                FaultKind::DegradeInterconnect { loss_per_mille, .. } => {
                    if loss_per_mille > 1000 {
                        return Err(format!(
                            "DegradeInterconnect loss {loss_per_mille} per-mille exceeds 1000"
                        ));
                    }
                }
            }
        }
        let offlined = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::OfflineCore { .. }))
            .count() as u32;
        if offlined >= total_cores {
            return Err(format!(
                "plan offlines {offlined} of {total_cores} cores; at least one must survive"
            ));
        }
        Ok(())
    }
}

/// The splitmix64 finalizer: the one-shot mixing function used for all
/// fault-plane randomness (storm generation, interconnect loss draws).
/// Stateless, so draws are reproducible from (seed, draw index) alone.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert_eq!(FaultPlan::empty(), FaultPlan::default());
    }

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::empty()
            .slow_core(1_000, 2, 400, 50_000)
            .degrade_interconnect(2_000, 250, 100, 10_000)
            .offline_core(3_000, 1);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[2].at, 3_000);
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::empty().offline_core(0, 9).validate(4).is_err());
        assert!(FaultPlan::empty()
            .slow_core(0, 0, 100, 0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::empty()
            .degrade_interconnect(0, 1500, 0, 0)
            .validate(4)
            .is_err());
        // Offlining every core leaves the work nowhere to go.
        let all_dead = FaultPlan::empty()
            .offline_core(0, 0)
            .offline_core(0, 1)
            .offline_core(0, 2)
            .offline_core(0, 3);
        assert!(all_dead.validate(4).is_err());
    }

    #[test]
    fn seeded_storm_is_deterministic_and_valid() {
        let a = FaultPlan::seeded_storm(7, 16, 100_000, 200_000);
        let b = FaultPlan::seeded_storm(7, 16, 100_000, 200_000);
        assert_eq!(a, b);
        assert!(a.validate(16).is_ok());
        assert_eq!(a.events.len(), 3);
        // A different seed produces a different storm.
        let c = FaultPlan::seeded_storm(8, 16, 100_000, 200_000);
        assert_ne!(a, c);
    }
}
