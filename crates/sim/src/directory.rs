//! The flat coherence directory: an open-addressed hash table from
//! [`LineAddr`] to [`LineHolders`].
//!
//! Every simulated cache miss and every write consults the directory, so it
//! sits squarely on the memory-system hot path. The table is an
//! [`o2_collections::FlatTable`] — the workspace's shared open-addressed
//! recipe (power-of-two capacity, Fibonacci hashing, linear probing,
//! tombstone-free backward-shift deletion, inline slots), which this
//! directory originally hand-rolled before the recipe was extracted.
//! Deletion matters here because lines enter and leave the directory with
//! every eviction; backward-shifting keeps probe chains from growing under
//! that churn.
//!
//! The table counts its probes (slot inspections) so
//! `Machine::mem_stats()` can report directory pressure.

use o2_collections::FlatTable;

use crate::cache::LineAddr;

/// Which caches hold a line right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineHolders {
    /// Bitmask of cores whose private (L1/L2) caches hold the line.
    pub cores: u64,
    /// Bitmask of chips whose shared L3 holds the line.
    pub chips: u64,
}

impl LineHolders {
    /// Whether no cache at all holds the line.
    pub fn is_empty(&self) -> bool {
        self.cores == 0 && self.chips == 0
    }

    /// Whether `core` (on `chip`) is the *only* holder: no other core's
    /// private cache and no other chip's L3 has a copy. (The holder's own
    /// chip may retain a victim copy in its L3 — a write never invalidates
    /// that one.)
    pub fn sole_holder(&self, core: u32, chip: u32) -> bool {
        self.cores == 1u64 << core && self.chips & !(1u64 << chip) == 0
    }
}

/// Open-addressed `LineAddr → LineHolders` table (see module docs). Real
/// line addresses are byte addresses divided by the line size, so the
/// table's `u64::MAX` vacant-slot sentinel is unreachable.
#[derive(Debug, Clone)]
pub struct FlatDirectory {
    table: FlatTable<LineAddr, LineHolders>,
}

impl Default for FlatDirectory {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl FlatDirectory {
    /// Creates a table with at least `cap` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            table: FlatTable::with_capacity(cap),
        }
    }

    /// Number of lines currently tracked.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the directory tracks no lines at all.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Allocated slots (power of two).
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Cumulative slot inspections across all operations.
    pub fn probes(&self) -> u64 {
        self.table.probes()
    }

    /// The holders of a line, copied, or `None` if untracked.
    #[inline]
    pub fn get(&mut self, line: LineAddr) -> Option<LineHolders> {
        self.table.get(line).copied()
    }

    /// Like [`FlatDirectory::get`] but without counting probes: for
    /// diagnostics and assertions that must not skew
    /// [`FlatDirectory::probes`].
    pub fn peek(&self, line: LineAddr) -> Option<LineHolders> {
        self.table.peek(line).copied()
    }

    /// Mutable access to the holders of a line, if tracked.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut LineHolders> {
        self.table.get_mut(line)
    }

    /// Mutable access to the holders of a line, inserting an empty entry if
    /// the line is untracked (the equivalent of `entry(..).or_default()`).
    #[inline]
    pub fn entry(&mut self, line: LineAddr) -> &mut LineHolders {
        self.table.entry(line)
    }

    /// Removes a line, returning its holders if it was tracked. Deletion
    /// backward-shifts the following cluster — no tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineHolders> {
        self.table.remove(line)
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Iterates over every tracked `(line, holders)` pair in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, LineHolders)> + '_ {
        self.table.iter().map(|(line, &holders)| (line, holders))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d = FlatDirectory::default();
        d.entry(42).cores = 0b1010;
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(42).unwrap().cores, 0b1010);
        assert_eq!(d.get(43), None);
        let h = d.remove(42).unwrap();
        assert_eq!(h.cores, 0b1010);
        assert_eq!(d.len(), 0);
        assert_eq!(d.get(42), None);
    }

    #[test]
    fn entry_is_stable_across_reinsertion() {
        let mut d = FlatDirectory::with_capacity(8);
        d.entry(1).chips = 7;
        d.entry(1).cores = 3;
        assert_eq!(d.len(), 1);
        let h = d.get(1).unwrap();
        assert_eq!((h.cores, h.chips), (3, 7));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut d = FlatDirectory::with_capacity(8);
        for line in 0..1000u64 {
            d.entry(line).cores = line;
        }
        assert_eq!(d.len(), 1000);
        assert!(d.capacity() >= 1024);
        for line in 0..1000u64 {
            assert_eq!(d.get(line).unwrap().cores, line, "line {line}");
        }
    }

    #[test]
    fn backward_shift_keeps_colliding_keys_reachable() {
        // Small table, many keys: every cluster shape gets exercised.
        let mut d = FlatDirectory::with_capacity(8);
        let keys: Vec<u64> = (0..6).map(|i| i * 8).collect();
        for &k in &keys {
            d.entry(k).cores = k + 1;
        }
        // Remove keys one by one; the remainder must stay reachable.
        for (n, &k) in keys.iter().enumerate() {
            assert!(d.remove(k).is_some(), "key {k}");
            assert_eq!(d.remove(k), None);
            for &rest in &keys[n + 1..] {
                assert_eq!(d.get(rest).unwrap().cores, rest + 1, "key {rest}");
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn churn_against_hashmap_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;
        let mut d = FlatDirectory::with_capacity(8);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic seeded churn: inserts and removals over a small key
        // space so clusters form and dissolve repeatedly.
        let mut rng = StdRng::seed_from_u64(0x1234_5678_9abc_def0);
        let mut next = move || rng.gen::<u64>();
        for step in 0..100_000u64 {
            let key = next() % 512;
            if next() % 3 == 0 {
                let a = d.remove(key).map(|h| h.cores);
                let b = reference.remove(&key);
                assert_eq!(a, b, "remove diverged at step {step}");
            } else {
                d.entry(key).cores = step;
                reference.insert(key, step);
            }
            assert_eq!(d.len(), reference.len(), "len diverged at step {step}");
        }
        for (&k, &v) in &reference {
            assert_eq!(d.get(k).map(|h| h.cores), Some(v), "key {k}");
        }
    }

    #[test]
    fn sole_holder_semantics() {
        let h = LineHolders {
            cores: 1 << 5,
            chips: 1 << 1,
        };
        assert!(h.sole_holder(5, 1));
        assert!(!h.sole_holder(5, 2), "foreign-chip L3 copy blocks");
        assert!(!h.sole_holder(4, 1));
        let shared = LineHolders {
            cores: (1 << 5) | (1 << 6),
            chips: 0,
        };
        assert!(!shared.sole_holder(5, 1));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut d = FlatDirectory::with_capacity(8);
        for line in 0..100u64 {
            d.entry(line);
        }
        let cap = d.capacity();
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.capacity(), cap);
        assert_eq!(d.get(5), None);
    }

    #[test]
    fn probes_accumulate() {
        let mut d = FlatDirectory::default();
        let before = d.probes();
        d.entry(9);
        d.get(9);
        d.get(10);
        assert!(d.probes() > before);
    }
}
