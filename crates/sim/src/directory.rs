//! The flat coherence directory: an open-addressed hash table from
//! [`LineAddr`] to [`LineHolders`].
//!
//! Every simulated cache miss and every write consults the directory, so it
//! sits squarely on the memory-system hot path. The previous implementation
//! was a `std::collections::HashMap` — SipHash on every probe, a heap node
//! per entry, and pointer chasing on every lookup. This table instead keeps
//! `(line, holders)` pairs inline in one flat allocation:
//!
//! * **Power-of-two capacity, mask indexing.** The slot of a line is
//!   `fibonacci_hash(line) & (capacity - 1)`; collisions probe linearly,
//!   which is sequential in memory.
//! * **Tombstone-free deletion.** Removal backward-shifts the following
//!   cluster instead of leaving tombstones, so probe chains never grow from
//!   churn — important because lines enter and leave the directory with
//!   every eviction.
//! * **Inline values.** A slot is 24 bytes (`line`, `cores`, `chips`);
//!   a probe touches at most a cache line or two.
//!
//! The table counts its probes (slot inspections) so
//! `Machine::mem_stats()` can report directory pressure.

use crate::cache::LineAddr;

/// Which caches hold a line right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineHolders {
    /// Bitmask of cores whose private (L1/L2) caches hold the line.
    pub cores: u64,
    /// Bitmask of chips whose shared L3 holds the line.
    pub chips: u64,
}

impl LineHolders {
    /// Whether no cache at all holds the line.
    pub fn is_empty(&self) -> bool {
        self.cores == 0 && self.chips == 0
    }

    /// Whether `core` (on `chip`) is the *only* holder: no other core's
    /// private cache and no other chip's L3 has a copy. (The holder's own
    /// chip may retain a victim copy in its L3 — a write never invalidates
    /// that one.)
    pub fn sole_holder(&self, core: u32, chip: u32) -> bool {
        self.cores == 1u64 << core && self.chips & !(1u64 << chip) == 0
    }
}

/// Sentinel for an empty slot. Real line addresses are byte addresses
/// divided by the line size, so `u64::MAX` is unreachable.
const EMPTY: LineAddr = LineAddr::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    holders: LineHolders,
}

const VACANT: Slot = Slot {
    line: EMPTY,
    holders: LineHolders { cores: 0, chips: 0 },
};

/// Open-addressed `LineAddr → LineHolders` table (see module docs).
#[derive(Debug, Clone)]
pub struct FlatDirectory {
    slots: Box<[Slot]>,
    mask: usize,
    len: usize,
    probes: u64,
}

impl Default for FlatDirectory {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl FlatDirectory {
    /// Creates a table with at least `cap` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(8);
        Self {
            slots: vec![VACANT; cap].into_boxed_slice(),
            mask: cap - 1,
            len: 0,
            probes: 0,
        }
    }

    /// Number of lines currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the directory tracks no lines at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative slot inspections across all operations.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    #[inline]
    fn home(&self, line: LineAddr) -> usize {
        // Fibonacci hashing: one multiply, then keep the high bits that
        // the mask would otherwise discard.
        let h = line.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & self.mask
    }

    /// Index of the slot holding `line`, if present.
    #[inline]
    fn find(&mut self, line: LineAddr) -> Option<usize> {
        let mut i = self.home(line);
        loop {
            self.probes += 1;
            let l = self.slots[i].line;
            if l == line {
                return Some(i);
            }
            if l == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The holders of a line, copied, or `None` if untracked.
    #[inline]
    pub fn get(&mut self, line: LineAddr) -> Option<LineHolders> {
        self.find(line).map(|i| self.slots[i].holders)
    }

    /// Like [`FlatDirectory::get`] but without counting probes: for
    /// diagnostics and assertions that must not skew
    /// [`FlatDirectory::probes`].
    pub fn peek(&self, line: LineAddr) -> Option<LineHolders> {
        let mut i = self.home(line);
        loop {
            let l = self.slots[i].line;
            if l == line {
                return Some(self.slots[i].holders);
            }
            if l == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable access to the holders of a line, if tracked.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut LineHolders> {
        self.find(line).map(move |i| &mut self.slots[i].holders)
    }

    /// Mutable access to the holders of a line, inserting an empty entry if
    /// the line is untracked (the equivalent of `entry(..).or_default()`).
    #[inline]
    pub fn entry(&mut self, line: LineAddr) -> &mut LineHolders {
        // Grow at 7/8 load so probe chains stay short.
        if (self.len + 1) * 8 > self.capacity() * 7 {
            self.grow();
        }
        let mut i = self.home(line);
        loop {
            self.probes += 1;
            let l = self.slots[i].line;
            if l == line {
                return &mut self.slots[i].holders;
            }
            if l == EMPTY {
                self.slots[i] = Slot {
                    line,
                    holders: LineHolders::default(),
                };
                self.len += 1;
                return &mut self.slots[i].holders;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes a line, returning its holders if it was tracked. Deletion
    /// backward-shifts the following cluster — no tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineHolders> {
        let mut hole = self.find(line)?;
        let removed = self.slots[hole].holders;
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            self.probes += 1;
            let l = self.slots[i].line;
            if l == EMPTY {
                break;
            }
            // The entry at `i` may move into the hole only if the hole lies
            // on its probe path, i.e. cyclically within [home(l), i).
            let h = self.home(l);
            let on_path = if h <= i {
                h <= hole && hole < i
            } else {
                hole >= h || hole < i
            };
            if on_path {
                self.slots[hole] = self.slots[i];
                hole = i;
            }
        }
        self.slots[hole] = VACANT;
        Some(removed)
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
        self.len = 0;
    }

    /// Iterates over every tracked `(line, holders)` pair in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, LineHolders)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.line != EMPTY)
            .map(|s| (s.line, s.holders))
    }

    fn grow(&mut self) {
        let new_cap = self.capacity() * 2;
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap].into_boxed_slice());
        self.mask = new_cap - 1;
        for slot in old.iter().filter(|s| s.line != EMPTY) {
            // Plain reinsertion; the table is known not to contain the key.
            let mut i = self.home(slot.line);
            loop {
                self.probes += 1;
                if self.slots[i].line == EMPTY {
                    self.slots[i] = *slot;
                    break;
                }
                i = (i + 1) & self.mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d = FlatDirectory::default();
        d.entry(42).cores = 0b1010;
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(42).unwrap().cores, 0b1010);
        assert_eq!(d.get(43), None);
        let h = d.remove(42).unwrap();
        assert_eq!(h.cores, 0b1010);
        assert_eq!(d.len(), 0);
        assert_eq!(d.get(42), None);
    }

    #[test]
    fn entry_is_stable_across_reinsertion() {
        let mut d = FlatDirectory::with_capacity(8);
        d.entry(1).chips = 7;
        d.entry(1).cores = 3;
        assert_eq!(d.len(), 1);
        let h = d.get(1).unwrap();
        assert_eq!((h.cores, h.chips), (3, 7));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut d = FlatDirectory::with_capacity(8);
        for line in 0..1000u64 {
            d.entry(line).cores = line;
        }
        assert_eq!(d.len(), 1000);
        assert!(d.capacity() >= 1024);
        for line in 0..1000u64 {
            assert_eq!(d.get(line).unwrap().cores, line, "line {line}");
        }
    }

    #[test]
    fn backward_shift_keeps_colliding_keys_reachable() {
        // Small table, many keys: every cluster shape gets exercised.
        let mut d = FlatDirectory::with_capacity(8);
        let keys: Vec<u64> = (0..6).map(|i| i * 8).collect();
        for &k in &keys {
            d.entry(k).cores = k + 1;
        }
        // Remove keys one by one; the remainder must stay reachable.
        for (n, &k) in keys.iter().enumerate() {
            assert!(d.remove(k).is_some(), "key {k}");
            assert_eq!(d.remove(k), None);
            for &rest in &keys[n + 1..] {
                assert_eq!(d.get(rest).unwrap().cores, rest + 1, "key {rest}");
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn churn_against_hashmap_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;
        let mut d = FlatDirectory::with_capacity(8);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic seeded churn: inserts and removals over a small key
        // space so clusters form and dissolve repeatedly.
        let mut rng = StdRng::seed_from_u64(0x1234_5678_9abc_def0);
        let mut next = move || rng.gen::<u64>();
        for step in 0..100_000u64 {
            let key = next() % 512;
            if next() % 3 == 0 {
                let a = d.remove(key).map(|h| h.cores);
                let b = reference.remove(&key);
                assert_eq!(a, b, "remove diverged at step {step}");
            } else {
                d.entry(key).cores = step;
                reference.insert(key, step);
            }
            assert_eq!(d.len(), reference.len(), "len diverged at step {step}");
        }
        for (&k, &v) in &reference {
            assert_eq!(d.get(k).map(|h| h.cores), Some(v), "key {k}");
        }
    }

    #[test]
    fn sole_holder_semantics() {
        let h = LineHolders {
            cores: 1 << 5,
            chips: 1 << 1,
        };
        assert!(h.sole_holder(5, 1));
        assert!(!h.sole_holder(5, 2), "foreign-chip L3 copy blocks");
        assert!(!h.sole_holder(4, 1));
        let shared = LineHolders {
            cores: (1 << 5) | (1 << 6),
            chips: 0,
        };
        assert!(!shared.sole_holder(5, 1));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut d = FlatDirectory::with_capacity(8);
        for line in 0..100u64 {
            d.entry(line);
        }
        let cap = d.capacity();
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.capacity(), cap);
        assert_eq!(d.get(5), None);
    }

    #[test]
    fn probes_accumulate() {
        let mut d = FlatDirectory::default();
        let before = d.probes();
        d.entry(9);
        d.get(9);
        d.get(10);
        assert!(d.probes() > before);
    }
}
