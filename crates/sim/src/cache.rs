//! Set-associative LRU caches at cache-line granularity.
//!
//! The simulator tracks *which* lines are resident in each cache so that
//! capacity effects — the heart of the paper's argument — are modelled
//! faithfully: a thread scheduler replicates hot data in many caches and
//! spills the rest to DRAM, while an O2 scheduler packs distinct objects
//! into distinct caches.
//!
//! ## Representation
//!
//! A cache is one flat slab of `sets × ways` slots (`Box<[Way]>`): the
//! slots of set `s` are `slab[s * ways .. (s + 1) * ways]`. Within a set
//! the valid ways form a prefix kept in recency order — a way's index *is*
//! its per-set LRU age: index 0 is the most recently used, the last valid
//! index the least, and empty slots (line == `EMPTY`) trail the prefix.
//! A touch rotates the way to the front (a no-op when it already is the
//! MRU, the overwhelmingly common case), an eviction always takes the last
//! valid way, and a miss probe stops at the first empty slot.
//!
//! Compared to the previous `Vec<Vec<Way>>` + global-tick + reverse-index
//! `HashMap` representation this makes a probe one bounded scan of
//! contiguous memory with zero allocation after construction, and set
//! selection a mask when the set count is a power of two. Recency order
//! picks the *same* victims as global-timestamp LRU (only the relative
//! touch order within a set matters), which `tests/cache_equivalence.rs`
//! pins against the old implementation.

use crate::config::CacheGeometry;

/// A cache-line address (byte address divided by the line size).
pub type LineAddr = u64;

/// One slot of the slab: the line address packed with its dirty bit and
/// exclusivity hint into 8 bytes (`line << 2 | excl << 1 | dirty`). Line
/// addresses are byte addresses divided by the line size, so the top two
/// bits are always free, and the all-ones pattern is unreachable and
/// marks a vacant slot. Halving the slot size halves the slab footprint,
/// which keeps hot sets resident in the *host's* caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way(u64);

impl Way {
    const DIRTY: u64 = 0b01;
    /// Exclusivity hint maintained by [`crate::machine::Machine`]: set when
    /// this core is known to be the line's only holder, letting a write hit
    /// skip the coherence directory. Never affects replacement decisions.
    const EXCL: u64 = 0b10;
    const VACANT: Way = Way(u64::MAX);

    #[inline]
    fn new(line: LineAddr, dirty: bool) -> Self {
        Way(line << 2 | dirty as u64)
    }

    #[inline]
    fn line(self) -> LineAddr {
        self.0 >> 2
    }

    /// Whether this slot holds `line`. A vacant slot matches no real line
    /// (its line bits decode above any byte-address / line-size value).
    #[inline]
    fn is(self, line: LineAddr) -> bool {
        self.0 >> 2 == line
    }

    #[inline]
    fn is_vacant(self) -> bool {
        self.0 == u64::MAX
    }

    #[inline]
    fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    #[inline]
    fn excl(self) -> bool {
        self.0 & Self::EXCL != 0
    }
}

/// A single set-associative, write-back, LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets × ways` slots, set-major; each set is an MRU-first prefix.
    slab: Box<[Way]>,
    ways: usize,
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (mask indexing), else 0.
    set_mask: u64,
    /// Whether `set_mask` is usable instead of `%`.
    pow2: bool,
    /// Number of resident lines (kept in sync with `slab`).
    resident: usize,
}

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line is resident.
    Hit,
    /// The line is not resident.
    Miss,
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The line that was evicted.
    pub line: LineAddr,
    /// Whether the evicted line was dirty (had been written).
    pub dirty: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry and line size.
    pub fn new(geometry: CacheGeometry, line_size: u64) -> Self {
        let sets = geometry.sets(line_size) as usize;
        let ways = geometry.associativity as usize;
        let pow2 = sets.is_power_of_two();
        Self {
            slab: vec![Way::VACANT; sets * ways].into_boxed_slice(),
            ways,
            sets,
            set_mask: sets as u64 - 1,
            pow2,
            resident: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        if self.pow2 {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// The slab slice holding `line`'s set.
    #[inline]
    fn set_slice_mut(&mut self, line: LineAddr) -> &mut [Way] {
        let base = self.set_of(line) * self.ways;
        &mut self.slab[base..base + self.ways]
    }

    #[inline]
    fn set_slice(&self, line: LineAddr) -> &[Way] {
        let base = self.set_of(line) * self.ways;
        &self.slab[base..base + self.ways]
    }

    /// Position of `line` in its set's valid prefix, or `None`.
    #[inline]
    fn position(set: &[Way], line: LineAddr) -> Option<usize> {
        for (i, &w) in set.iter().enumerate() {
            if w.is(line) {
                return Some(i);
            }
            if w.is_vacant() {
                return None;
            }
        }
        None
    }

    /// Moves the way at `idx` to the front of its set (the MRU slot).
    #[inline]
    fn move_to_front(set: &mut [Way], idx: usize) {
        if idx != 0 {
            let w = set[idx];
            set.copy_within(0..idx, 1);
            set[0] = w;
        }
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Whether the line is currently resident (does not update LRU state).
    pub fn contains(&self, line: LineAddr) -> bool {
        Self::position(self.set_slice(line), line).is_some()
    }

    /// Probes for a line, updating LRU state on a hit.
    #[inline]
    pub fn probe_and_touch(&mut self, line: LineAddr) -> Probe {
        let set = self.set_slice_mut(line);
        match Self::position(set, line) {
            Some(idx) => {
                Self::move_to_front(set, idx);
                Probe::Hit
            }
            None => Probe::Miss,
        }
    }

    /// Write-hit fast path: probe, touch, and set the dirty bit in a single
    /// set scan. Returns the way's exclusivity hint on a hit.
    #[inline]
    pub fn touch_write(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_slice_mut(line);
        let idx = Self::position(set, line)?;
        Self::move_to_front(set, idx);
        set[0].0 |= Way::DIRTY;
        Some(set[0].excl())
    }

    /// Marks a resident line dirty (a write hit). Returns `false` if the
    /// line is not resident. Does not update LRU state.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_slice_mut(line);
        match Self::position(set, line) {
            Some(idx) => {
                set[idx].0 |= Way::DIRTY;
                true
            }
            None => false,
        }
    }

    /// Sets the exclusivity hint on a resident line. Returns whether the
    /// line was resident.
    pub fn set_excl(&mut self, line: LineAddr) -> bool {
        let set = self.set_slice_mut(line);
        match Self::position(set, line) {
            Some(idx) => {
                set[idx].0 |= Way::EXCL;
                true
            }
            None => false,
        }
    }

    /// Clears the exclusivity hint on a line, if resident.
    pub fn clear_excl(&mut self, line: LineAddr) {
        let set = self.set_slice_mut(line);
        if let Some(idx) = Self::position(set, line) {
            set[idx].0 &= !Way::EXCL;
        }
    }

    /// Inserts a line, evicting the LRU way of its set if the set is full.
    ///
    /// Inserting a line that is already resident only refreshes its LRU
    /// position and dirty bit; no eviction occurs. Newly inserted lines
    /// carry no exclusivity hint.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        let ways = self.ways;
        let set = self.set_slice_mut(line);

        // One scan finds the line or the end of the valid prefix.
        let mut end = ways;
        for (i, &w) in set.iter().enumerate() {
            if w.is(line) {
                let w = Way(w.0 | if dirty { Way::DIRTY } else { 0 });
                set.copy_within(0..i, 1);
                set[0] = w;
                return None;
            }
            if w.is_vacant() {
                end = i;
                break;
            }
        }

        let (evicted, shift) = if end == ways {
            // Set full: the last way is the LRU victim; it falls off the
            // end of the rotation.
            let v = set[ways - 1];
            (
                Some(Evicted {
                    line: v.line(),
                    dirty: v.dirty(),
                }),
                ways - 1,
            )
        } else {
            (None, end)
        };
        set.copy_within(0..shift, 1);
        set[0] = Way::new(line, dirty);
        if evicted.is_none() {
            self.resident += 1;
        }
        evicted
    }

    /// Removes a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let ways = self.ways;
        let set = self.set_slice_mut(line);
        let idx = Self::position(set, line)?;
        let dirty = set[idx].dirty();
        // Close the gap so the valid prefix stays dense and in order.
        set.copy_within(idx + 1..ways, idx);
        set[ways - 1] = Way::VACANT;
        self.resident -= 1;
        Some(dirty)
    }

    /// Removes every line from the cache.
    pub fn flush(&mut self) {
        self.slab.fill(Way::VACANT);
        self.resident = 0;
    }

    /// Iterates over every resident line.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.slab
            .iter()
            .filter(|w| !w.is_vacant())
            .map(|w| w.line())
    }

    /// Occupancy as a fraction of capacity (0.0–1.0).
    pub fn occupancy(&self) -> f64 {
        if self.capacity_lines() == 0 {
            0.0
        } else {
            self.resident as f64 / self.capacity_lines() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 lines, 2-way: 4 sets.
        Cache::new(CacheGeometry::new(8 * 64, 2), 64)
    }

    #[test]
    fn insert_then_probe_hits() {
        let mut c = small();
        assert_eq!(c.probe_and_touch(5), Probe::Miss);
        assert!(c.insert(5, false).is_none());
        assert_eq!(c.probe_and_touch(5), Probe::Hit);
        assert!(c.contains(5));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn capacity_and_sets() {
        let c = small();
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways per set.
        c.insert(0, false);
        c.insert(4, false);
        // Touch 0 so that 4 becomes the LRU victim.
        c.probe_and_touch(0);
        let evicted = c.insert(8, false).expect("set was full");
        assert_eq!(evicted.line, 4);
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn reinserting_resident_line_does_not_evict() {
        let mut c = small();
        c.insert(0, false);
        c.insert(4, false);
        assert!(c.insert(0, true).is_none());
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = small();
        c.insert(0, true);
        c.insert(4, false);
        c.probe_and_touch(4);
        let evicted = c.insert(8, false).unwrap();
        assert_eq!(evicted.line, 0);
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_hits_resident_lines() {
        let mut c = small();
        assert!(!c.mark_dirty(3));
        c.insert(3, false);
        assert!(c.mark_dirty(3));
        let d = c.invalidate(3).unwrap();
        assert!(d);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.insert(7, false);
        assert_eq!(c.invalidate(7), Some(false));
        assert_eq!(c.invalidate(7), None);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        for l in 0..8 {
            c.insert(l, false);
        }
        assert_eq!(c.resident_lines(), 8);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.occupancy(), 0.0);
    }

    #[test]
    fn occupancy_fraction() {
        let mut c = small();
        c.insert(1, false);
        c.insert(2, false);
        assert!((c.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lines_iterator_reports_all_resident() {
        let mut c = small();
        c.insert(1, false);
        c.insert(2, false);
        c.insert(3, false);
        let mut lines: Vec<_> = c.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn touch_write_sets_dirty_and_reports_exclusivity() {
        let mut c = small();
        assert_eq!(c.touch_write(5), None);
        c.insert(5, false);
        assert_eq!(c.touch_write(5), Some(false));
        // The write made it dirty.
        assert_eq!(c.invalidate(5), Some(true));

        c.insert(6, false);
        assert!(c.set_excl(6));
        assert_eq!(c.touch_write(6), Some(true));
        c.clear_excl(6);
        assert_eq!(c.touch_write(6), Some(false));
    }

    #[test]
    fn excl_hint_does_not_survive_eviction_or_reinsert() {
        let mut c = small();
        c.insert(0, false);
        c.set_excl(0);
        // Reinsertion keeps residency; hint untouched by the LRU refresh.
        c.insert(0, false);
        assert_eq!(c.touch_write(0), Some(true));
        // Evict line 0 out of set 0 (2 ways): newly inserted lines carry
        // no hint, and a refill of 0 starts clean.
        c.insert(4, false);
        c.insert(8, false);
        assert!(!c.contains(0));
        c.insert(0, false);
        assert_eq!(c.touch_write(0), Some(false));
    }

    #[test]
    fn set_excl_misses_nonresident_lines() {
        let mut c = small();
        assert!(!c.set_excl(3));
        c.clear_excl(3); // no-op, must not panic
    }

    #[test]
    fn recency_order_evicts_the_true_lru() {
        // 1 set, 4 ways: pure LRU. Exercise a few touch orders and check
        // eviction picks the true LRU each time.
        let mut c = Cache::new(CacheGeometry::new(4 * 64, 4), 64);
        for l in 0..4 {
            c.insert(l, false);
        }
        c.probe_and_touch(0);
        c.probe_and_touch(2);
        c.probe_and_touch(0);
        // LRU order (oldest first) is now 1, 3, 2, 0.
        assert_eq!(c.insert(10, false).unwrap().line, 1);
        assert_eq!(c.insert(11, false).unwrap().line, 3);
        assert_eq!(c.insert(12, false).unwrap().line, 2);
        assert_eq!(c.insert(13, false).unwrap().line, 0);
    }

    #[test]
    fn invalidate_in_the_middle_keeps_order_dense() {
        let mut c = Cache::new(CacheGeometry::new(4 * 64, 4), 64);
        for l in 0..4 {
            c.insert(l, false);
        }
        // Recency (MRU first): 3, 2, 1, 0. Remove 2.
        c.invalidate(2);
        assert_eq!(c.resident_lines(), 3);
        // Next two evictions: 0 then 1.
        assert!(c.insert(10, false).is_none(), "set has a free way");
        assert_eq!(c.insert(11, false).unwrap().line, 0);
        assert_eq!(c.insert(12, false).unwrap().line, 1);
    }
}
