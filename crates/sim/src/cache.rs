//! Set-associative LRU caches at cache-line granularity.
//!
//! The simulator tracks *which* lines are resident in each cache so that
//! capacity effects — the heart of the paper's argument — are modelled
//! faithfully: a thread scheduler replicates hot data in many caches and
//! spills the rest to DRAM, while an O2 scheduler packs distinct objects
//! into distinct caches.

use std::collections::HashMap;

use crate::config::CacheGeometry;

/// A cache-line address (byte address divided by the line size).
pub type LineAddr = u64;

/// One way of a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line: LineAddr,
    /// Monotonic timestamp of the last touch, used for LRU replacement.
    last_use: u64,
    dirty: bool,
}

/// A single set-associative, write-back, LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Sets, each holding up to `ways` entries.
    sets: Vec<Vec<Way>>,
    ways: usize,
    /// Monotonic use counter for LRU ordering.
    tick: u64,
    /// Number of resident lines (kept in sync with `sets`).
    resident: usize,
    /// Reverse index from line to set, used for O(1) invalidation checks.
    index: HashMap<LineAddr, usize>,
}

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line is resident.
    Hit,
    /// The line is not resident.
    Miss,
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The line that was evicted.
    pub line: LineAddr,
    /// Whether the evicted line was dirty (had been written).
    pub dirty: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry and line size.
    pub fn new(geometry: CacheGeometry, line_size: u64) -> Self {
        let sets = geometry.sets(line_size) as usize;
        let ways = geometry.associativity as usize;
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            tick: 0,
            resident: 0,
            index: HashMap::new(),
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Whether the line is currently resident (does not update LRU state).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.index.contains_key(&line)
    }

    /// Probes for a line, updating LRU state on a hit.
    pub fn probe_and_touch(&mut self, line: LineAddr) -> Probe {
        self.tick += 1;
        let set_idx = self.set_of(line);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_use = tick;
            Probe::Hit
        } else {
            Probe::Miss
        }
    }

    /// Marks a resident line dirty (a write hit). Returns `false` if the
    /// line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set_idx = self.set_of(line);
        if let Some(way) = self.sets[set_idx].iter_mut().find(|w| w.line == line) {
            way.dirty = true;
            true
        } else {
            false
        }
    }

    /// Inserts a line, evicting the LRU way of its set if the set is full.
    ///
    /// Inserting a line that is already resident only refreshes its LRU
    /// position and dirty bit; no eviction occurs.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(line);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_use = tick;
            way.dirty |= dirty;
            return None;
        }

        let mut evicted = None;
        if set.len() >= ways {
            // Evict the least-recently-used way of this set.
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.index.remove(&victim.line);
            self.resident -= 1;
            evicted = Some(Evicted {
                line: victim.line,
                dirty: victim.dirty,
            });
        }

        set.push(Way {
            line,
            last_use: tick,
            dirty,
        });
        self.index.insert(line, set_idx);
        self.resident += 1;
        evicted
    }

    /// Removes a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.index.remove(&line)?;
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.line == line)?;
        let way = set.swap_remove(pos);
        self.resident -= 1;
        Some(way.dirty)
    }

    /// Removes every line from the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.index.clear();
        self.resident = 0;
    }

    /// Iterates over every resident line.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flat_map(|s| s.iter().map(|w| w.line))
    }

    /// Occupancy as a fraction of capacity (0.0–1.0).
    pub fn occupancy(&self) -> f64 {
        if self.capacity_lines() == 0 {
            0.0
        } else {
            self.resident as f64 / self.capacity_lines() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 lines, 2-way: 4 sets.
        Cache::new(CacheGeometry::new(8 * 64, 2), 64)
    }

    #[test]
    fn insert_then_probe_hits() {
        let mut c = small();
        assert_eq!(c.probe_and_touch(5), Probe::Miss);
        assert!(c.insert(5, false).is_none());
        assert_eq!(c.probe_and_touch(5), Probe::Hit);
        assert!(c.contains(5));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn capacity_and_sets() {
        let c = small();
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways per set.
        c.insert(0, false);
        c.insert(4, false);
        // Touch 0 so that 4 becomes the LRU victim.
        c.probe_and_touch(0);
        let evicted = c.insert(8, false).expect("set was full");
        assert_eq!(evicted.line, 4);
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn reinserting_resident_line_does_not_evict() {
        let mut c = small();
        c.insert(0, false);
        c.insert(4, false);
        assert!(c.insert(0, true).is_none());
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = small();
        c.insert(0, true);
        c.insert(4, false);
        c.probe_and_touch(4);
        let evicted = c.insert(8, false).unwrap();
        assert_eq!(evicted.line, 0);
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_hits_resident_lines() {
        let mut c = small();
        assert!(!c.mark_dirty(3));
        c.insert(3, false);
        assert!(c.mark_dirty(3));
        let d = c.invalidate(3).unwrap();
        assert!(d);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.insert(7, false);
        assert_eq!(c.invalidate(7), Some(false));
        assert_eq!(c.invalidate(7), None);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        for l in 0..8 {
            c.insert(l, false);
        }
        assert_eq!(c.resident_lines(), 8);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.occupancy(), 0.0);
    }

    #[test]
    fn occupancy_fraction() {
        let mut c = small();
        c.insert(1, false);
        c.insert(2, false);
        assert!((c.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lines_iterator_reports_all_resident() {
        let mut c = small();
        c.insert(1, false);
        c.insert(2, false);
        c.insert(3, false);
        let mut lines: Vec<_> = c.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
