//! Machine configuration: topology, cache geometry and latency parameters.
//!
//! The default configuration, [`MachineConfig::amd16`], reproduces the
//! 16-core AMD system described in Section 5 of the paper: four quad-core
//! 2 GHz Opteron chips connected by a square interconnect, per-core L1 and
//! L2 caches, a shared per-chip L3, and the measured access latencies
//! (L1 3 cycles, L2 14 cycles, L3 75 cycles, remote accesses 127–336
//! cycles).

/// Geometry of a single cache (or of each instance of a replicated cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set). Use a large value for a
    /// fully-associative cache.
    pub associativity: u32,
}

impl CacheGeometry {
    /// Creates a new cache geometry.
    pub const fn new(size_bytes: u64, associativity: u32) -> Self {
        Self {
            size_bytes,
            associativity,
        }
    }

    /// Number of lines this cache can hold for a given line size.
    pub fn lines(&self, line_size: u64) -> u64 {
        self.size_bytes / line_size
    }

    /// Number of sets for a given line size.
    pub fn sets(&self, line_size: u64) -> u64 {
        let lines = self.lines(line_size);
        let ways = u64::from(self.associativity).max(1);
        (lines / ways).max(1)
    }
}

/// Raw latency parameters of the memory system, in cycles.
///
/// The defaults are the measured values reported in Section 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Hit in the local L1 cache.
    pub l1_hit: u64,
    /// Hit in the local L2 cache.
    pub l2_hit: u64,
    /// Hit in the chip-local shared L3 cache.
    pub l3_hit: u64,
    /// Effective cost of an L3 hit that continues a sequential stream
    /// (the L2 prefetcher hides most of the L3 latency for linear scans).
    pub l3_streamed: u64,
    /// Fetch from the cache of another core on the same chip.
    pub remote_cache_same_chip: u64,
    /// Fetch from a cache on an adjacent chip (one interconnect hop).
    pub remote_cache_one_hop: u64,
    /// Fetch from a cache on the diagonally opposite chip (two hops).
    pub remote_cache_two_hops: u64,
    /// Load from the DRAM bank attached to the local chip.
    pub dram_local: u64,
    /// Load from the DRAM bank attached to an adjacent chip.
    pub dram_one_hop: u64,
    /// Load from the most distant DRAM bank (two hops).
    pub dram_two_hops: u64,
    /// Effective cost of a DRAM load that continues a sequential stream
    /// (models hardware prefetching / memory-level parallelism).
    pub dram_streamed: u64,
    /// Effective cost of a remote-cache load that continues a sequential
    /// stream.
    pub remote_streamed: u64,
    /// Cost added to a write that must invalidate copies in other caches,
    /// per invalidated cache.
    pub invalidate_per_copy: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            l1_hit: 3,
            l2_hit: 14,
            l3_hit: 75,
            l3_streamed: 30,
            remote_cache_same_chip: 127,
            remote_cache_one_hop: 200,
            remote_cache_two_hops: 270,
            dram_local: 230,
            dram_one_hop: 280,
            dram_two_hops: 336,
            dram_streamed: 120,
            remote_streamed: 90,
            invalidate_per_copy: 20,
        }
    }
}

/// Interconnect contention model.
///
/// The paper notes that cache-coherence broadcasts "can saturate system
/// interconnects for some workloads"; the linear model adds a latency
/// penalty proportional to recent interconnect utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContentionModel {
    /// No contention modelling: every message pays only its base latency.
    None,
    /// Linear queueing penalty: each message pays an extra
    /// `slope * utilization` cycles where utilization is the fraction of
    /// recent cycles the interconnect was busy (0.0–1.0).
    Linear {
        /// Extra cycles charged at 100% utilization.
        slope: u64,
        /// Length of the utilization accounting window in cycles.
        window: u64,
    },
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::Linear {
            slope: 100,
            window: 100_000,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of chips (sockets).
    pub chips: u32,
    /// Cores per chip.
    pub cores_per_chip: u32,
    /// Cache line size in bytes.
    pub line_size: u64,
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Per-core L2 cache.
    pub l2: CacheGeometry,
    /// Per-chip shared L3 cache (victim cache of the chip's L2s).
    pub l3: CacheGeometry,
    /// Memory-system latencies.
    pub latency: LatencyConfig,
    /// Interconnect contention model.
    pub contention: ContentionModel,
    /// Core clock frequency in GHz (used to convert cycles to seconds).
    pub clock_ghz: f64,
}

impl MachineConfig {
    /// The 16-core AMD system of Section 5: four quad-core 2 GHz Opteron
    /// chips, 64 KB L1, 512 KB L2 per core, 2 MB shared L3 per chip.
    pub fn amd16() -> Self {
        Self {
            chips: 4,
            cores_per_chip: 4,
            line_size: 64,
            l1: CacheGeometry::new(64 * 1024, 8),
            l2: CacheGeometry::new(512 * 1024, 16),
            l3: CacheGeometry::new(2 * 1024 * 1024, 32),
            latency: LatencyConfig::default(),
            contention: ContentionModel::default(),
            clock_ghz: 2.0,
        }
    }

    /// A small single-chip quad-core machine, as used by the worked example
    /// in Section 2 and Figure 2 of the paper.
    pub fn quad4() -> Self {
        Self {
            chips: 1,
            cores_per_chip: 4,
            ..Self::amd16()
        }
    }

    /// A hypothetical future multicore (Section 6.1): more cores, larger
    /// per-core caches, relatively more expensive DRAM.
    pub fn future(chips: u32, cores_per_chip: u32) -> Self {
        let mut cfg = Self::amd16();
        cfg.chips = chips;
        cfg.cores_per_chip = cores_per_chip;
        cfg.l2 = CacheGeometry::new(1024 * 1024, 16);
        cfg.l3 = CacheGeometry::new(4 * 1024 * 1024, 32);
        cfg.latency.dram_local = 400;
        cfg.latency.dram_one_hop = 480;
        cfg.latency.dram_two_hops = 560;
        cfg.latency.dram_streamed = 200;
        cfg
    }

    /// Total number of cores in the machine.
    pub fn total_cores(&self) -> u32 {
        self.chips * self.cores_per_chip
    }

    /// The chip a core belongs to.
    pub fn chip_of(&self, core: u32) -> u32 {
        core / self.cores_per_chip
    }

    /// The cores belonging to a chip.
    pub fn cores_of_chip(&self, chip: u32) -> impl Iterator<Item = u32> {
        let start = chip * self.cores_per_chip;
        start..start + self.cores_per_chip
    }

    /// Aggregate on-chip memory: all L2s plus all L3s (the AMD L3 is a
    /// victim cache, so L2 and L3 contents are distinct). For the default
    /// configuration this is the 16 MB figure quoted in the paper.
    pub fn aggregate_on_chip_bytes(&self) -> u64 {
        u64::from(self.total_cores()) * self.l2.size_bytes
            + u64::from(self.chips) * self.l3.size_bytes
    }

    /// Per-core cache budget used by the cache-packing algorithm: the
    /// private L2 plus an even share of the chip's L3.
    pub fn per_core_budget_bytes(&self) -> u64 {
        self.l2.size_bytes + self.l3.size_bytes / u64::from(self.cores_per_chip)
    }

    /// Converts a cycle count to seconds at the configured clock rate.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Validates internal consistency; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.chips == 0 || self.cores_per_chip == 0 {
            return Err("machine must have at least one chip and one core per chip".into());
        }
        if !self.line_size.is_power_of_two() {
            return Err(format!(
                "line size {} is not a power of two",
                self.line_size
            ));
        }
        for (name, geom) in [("L1", self.l1), ("L2", self.l2), ("L3", self.l3)] {
            if geom.size_bytes < self.line_size {
                return Err(format!("{name} smaller than one line"));
            }
            if geom.size_bytes % self.line_size != 0 {
                return Err(format!("{name} size not a multiple of the line size"));
            }
            if geom.associativity == 0 {
                return Err(format!("{name} associativity must be at least 1"));
            }
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock rate must be positive".into());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::amd16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd16_matches_paper_parameters() {
        let cfg = MachineConfig::amd16();
        assert_eq!(cfg.total_cores(), 16);
        assert_eq!(cfg.chips, 4);
        assert_eq!(cfg.latency.l1_hit, 3);
        assert_eq!(cfg.latency.l2_hit, 14);
        assert_eq!(cfg.latency.l3_hit, 75);
        assert_eq!(cfg.latency.remote_cache_same_chip, 127);
        assert_eq!(cfg.latency.dram_two_hops, 336);
        // 16 x 512 KB L2 + 4 x 2 MB L3 = 16 MB aggregate on-chip memory.
        assert_eq!(cfg.aggregate_on_chip_bytes(), 16 * 1024 * 1024);
        cfg.validate().expect("default config must validate");
    }

    #[test]
    fn per_core_budget_is_l2_plus_l3_share() {
        let cfg = MachineConfig::amd16();
        assert_eq!(cfg.per_core_budget_bytes(), 512 * 1024 + 512 * 1024);
    }

    #[test]
    fn chip_of_maps_cores_to_chips() {
        let cfg = MachineConfig::amd16();
        assert_eq!(cfg.chip_of(0), 0);
        assert_eq!(cfg.chip_of(3), 0);
        assert_eq!(cfg.chip_of(4), 1);
        assert_eq!(cfg.chip_of(15), 3);
        let cores: Vec<u32> = cfg.cores_of_chip(2).collect();
        assert_eq!(cores, vec![8, 9, 10, 11]);
    }

    #[test]
    fn quad4_is_single_chip() {
        let cfg = MachineConfig::quad4();
        assert_eq!(cfg.total_cores(), 4);
        assert_eq!(cfg.chips, 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = MachineConfig::amd16();
        cfg.line_size = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::amd16();
        cfg.chips = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::amd16();
        cfg.l1 = CacheGeometry::new(32, 0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(64 * 1024, 8);
        assert_eq!(g.lines(64), 1024);
        assert_eq!(g.sets(64), 128);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let cfg = MachineConfig::amd16();
        let s = cfg.cycles_to_seconds(2_000_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
