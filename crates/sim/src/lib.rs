//! # o2-sim — a deterministic multicore memory-system simulator
//!
//! This crate is the hardware substrate for the CoreTime / O2-scheduling
//! reproduction of *"Reinventing Scheduling for Multicore Systems"*
//! (Boyd-Wickizer, Morris, Kaashoek — HotOS 2009).
//!
//! The paper's evaluation runs on a 16-core AMD machine (four quad-core
//! 2 GHz Opteron chips on a square interconnect) and relies on hardware
//! event counters for runtime monitoring. This crate models exactly that
//! machine in software:
//!
//! * per-core set-associative L1 and L2 caches and a per-chip victim L3
//!   ([`cache`], [`machine`]),
//! * a flat open-addressed coherence directory ([`directory`]) and a
//!   hop-based interconnect with optional contention modelling
//!   ([`interconnect`]),
//! * the measured latencies from Section 5 of the paper as the default
//!   cost model ([`config`], [`latency`]),
//! * per-core event counters equivalent to the AMD performance counters
//!   CoreTime reads ([`counters`]),
//! * a simulated physical address space with NUMA home nodes ([`memory`]),
//! * helpers to map cache contents back to application objects for
//!   Figure-2 style reports ([`occupancy`]) and an access trace for
//!   debugging ([`trace`]).
//!
//! Everything is deterministic: the simulator has no dependence on wall
//! clock time, threads or host hardware.
//!
//! ## Example
//!
//! ```
//! use o2_sim::{Machine, MachineConfig, AccessKind};
//!
//! let mut machine = Machine::new(MachineConfig::amd16());
//! let region = machine.memory_mut().alloc(4096, 0);
//! // First touch goes to DRAM...
//! let cold = machine.access(0, region.addr, 4096, AccessKind::Read);
//! // ...the second touch hits in the L1/L2.
//! let warm = machine.access(0, region.addr, 4096, AccessKind::Read);
//! assert!(warm < cold);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod counters;
pub mod directory;
pub mod fault;
pub mod interconnect;
pub mod latency;
pub mod machine;
pub mod memory;
pub mod occupancy;
pub mod trace;

pub use cache::{Cache, Evicted, LineAddr, Probe};
pub use config::{CacheGeometry, ContentionModel, LatencyConfig, MachineConfig};
pub use counters::{CoreCounters, CounterDelta, MachineCounters, MemStats};
pub use directory::{FlatDirectory, LineHolders};
pub use fault::{FaultEvent, FaultKind, FaultPlan, LinkDegradation};
pub use interconnect::{Interconnect, InterconnectStats, MessageKind};
pub use latency::{AccessOutcome, LatencyModel};
pub use machine::{AccessKind, Machine};
pub use memory::{Addr, HomePolicy, Region, SimMemory};
pub use occupancy::{snapshot, snapshot_with_threshold, OccupancySnapshot, Residency};
pub use trace::{AccessTrace, TraceEntry};
