//! The simulated physical address space: a bump allocator with per-region
//! NUMA home chips.
//!
//! Every object a workload touches is first allocated here so the machine
//! knows which chip's DRAM bank backs each line (and therefore how far a
//! DRAM fill has to travel).

use std::collections::BTreeMap;

/// A simulated byte address.
pub type Addr = u64;

/// An allocated region of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub addr: Addr,
    /// Size in bytes.
    pub size: u64,
    /// Chip whose DRAM bank backs the region.
    pub home_chip: u32,
    /// Optional caller-assigned label (e.g. a directory index).
    pub label: u64,
}

impl Region {
    /// Whether the region contains the address.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.addr && addr < self.addr + self.size
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.addr + self.size
    }
}

/// NUMA placement policy for new allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// Regions are spread round-robin across chips (the default; matches
    /// Linux interleaved allocation for shared data).
    RoundRobin,
    /// All regions live on one chip's DRAM.
    Fixed(u32),
}

/// The simulated memory: allocator plus address-to-home-chip lookup.
#[derive(Debug, Clone)]
pub struct SimMemory {
    chips: u32,
    line_size: u64,
    next: Addr,
    next_chip: u32,
    policy: HomePolicy,
    /// Regions keyed by start address for range lookup.
    regions: BTreeMap<Addr, Region>,
}

impl SimMemory {
    /// Base address of the first allocation. Non-zero so that address 0 can
    /// serve as a sentinel.
    pub const BASE: Addr = 0x1000;

    /// Creates an empty memory for a machine with `chips` chips.
    pub fn new(chips: u32, line_size: u64) -> Self {
        Self {
            chips: chips.max(1),
            line_size,
            next: Self::BASE,
            next_chip: 0,
            policy: HomePolicy::RoundRobin,
            regions: BTreeMap::new(),
        }
    }

    /// Sets the NUMA placement policy for subsequent allocations.
    pub fn set_policy(&mut self, policy: HomePolicy) {
        self.policy = policy;
    }

    /// Allocates `size` bytes aligned to a cache line, returning the region.
    pub fn alloc(&mut self, size: u64, label: u64) -> Region {
        let home = match self.policy {
            HomePolicy::RoundRobin => {
                let c = self.next_chip;
                self.next_chip = (self.next_chip + 1) % self.chips;
                c
            }
            HomePolicy::Fixed(c) => c.min(self.chips - 1),
        };
        self.alloc_on(size, home, label)
    }

    /// Allocates `size` bytes whose DRAM home is the given chip.
    pub fn alloc_on(&mut self, size: u64, home_chip: u32, label: u64) -> Region {
        let size = size.max(1);
        // Align the start to a line boundary so distinct regions never share
        // a cache line (false sharing is modelled explicitly when wanted).
        let addr = round_up(self.next, self.line_size);
        let region = Region {
            addr,
            size,
            home_chip: home_chip.min(self.chips - 1),
            label,
        };
        self.next = addr + round_up(size, self.line_size);
        self.regions.insert(addr, region);
        region
    }

    /// The region containing an address, if any.
    pub fn region_of(&self, addr: Addr) -> Option<Region> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| *r)
            .filter(|r| r.contains(addr))
    }

    /// The chip whose DRAM bank backs an address. Unallocated addresses are
    /// treated as interleaved by line across chips.
    pub fn home_chip(&self, addr: Addr) -> u32 {
        match self.region_of(addr) {
            Some(r) => r.home_chip,
            None => ((addr / self.line_size) % u64::from(self.chips)) as u32,
        }
    }

    /// The chip whose DRAM bank backs a cache line (a byte address divided
    /// by the line size). Hot-path variant of [`SimMemory::home_chip`] for
    /// callers that already work in line addresses.
    pub fn home_chip_of_line(&self, line: u64) -> u32 {
        self.home_chip(line * self.line_size)
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.values().map(|r| r.size).sum()
    }

    /// Number of regions allocated.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over every allocated region in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Line size used for alignment.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    debug_assert!(to.is_power_of_two());
    (v + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = SimMemory::new(4, 64);
        let a = m.alloc(100, 0);
        let b = m.alloc(10, 1);
        assert_eq!(a.addr % 64, 0);
        assert_eq!(b.addr % 64, 0);
        assert!(b.addr >= a.addr + 128, "regions must not share lines");
        assert_eq!(m.region_count(), 2);
        assert_eq!(m.allocated_bytes(), 110);
    }

    #[test]
    fn round_robin_home_chips() {
        let mut m = SimMemory::new(4, 64);
        let homes: Vec<u32> = (0..8).map(|i| m.alloc(64, i).home_chip).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn fixed_policy_pins_home_chip() {
        let mut m = SimMemory::new(4, 64);
        m.set_policy(HomePolicy::Fixed(2));
        for i in 0..4 {
            assert_eq!(m.alloc(64, i).home_chip, 2);
        }
    }

    #[test]
    fn alloc_on_clamps_to_valid_chip() {
        let mut m = SimMemory::new(2, 64);
        let r = m.alloc_on(64, 99, 0);
        assert_eq!(r.home_chip, 1);
    }

    #[test]
    fn region_of_finds_containing_region() {
        let mut m = SimMemory::new(4, 64);
        let a = m.alloc(200, 7);
        assert_eq!(m.region_of(a.addr), Some(a));
        assert_eq!(m.region_of(a.addr + 199), Some(a));
        assert_eq!(m.region_of(a.addr + 200), None);
        assert_eq!(m.region_of(0), None);
    }

    #[test]
    fn home_chip_of_unallocated_addresses_interleaves() {
        let m = SimMemory::new(4, 64);
        let c0 = m.home_chip(0);
        let c1 = m.home_chip(64);
        let c2 = m.home_chip(128);
        assert_ne!(c0, c1);
        assert_ne!(c1, c2);
        assert!(c0 < 4 && c1 < 4 && c2 < 4);
    }

    #[test]
    fn region_end_and_contains() {
        let r = Region {
            addr: 128,
            size: 64,
            home_chip: 0,
            label: 0,
        };
        assert!(r.contains(128));
        assert!(r.contains(191));
        assert!(!r.contains(192));
        assert_eq!(r.end(), 192);
    }

    #[test]
    fn zero_sized_alloc_becomes_one_byte() {
        let mut m = SimMemory::new(1, 64);
        let r = m.alloc(0, 0);
        assert_eq!(r.size, 1);
    }
}
